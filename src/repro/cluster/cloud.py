"""Cloud controller manager / cluster autoscaler.

The paper relies on GKE's node autoscaling: "changing the number of
worker-pods could result in pending pods with no available node or idle
nodes that are underutilized, and the cloud controller manager will
add/remove nodes accordingly". This loop:

* **scale-up** — each scan, first-fit-decreasing packs the resource
  requests of unschedulable pending pods into hypothetical new nodes and
  reserves that many machines (minus reservations already in flight).
  Reservation latency is drawn per machine from a normal distribution
  calibrated to the fig-6 measurement (GKE: mean 157.4 s total including
  image pull; see :class:`CloudControllerConfig`);
* **scale-down** — a node continuously idle for ``idle_timeout`` seconds
  is cordoned and removed, never below ``min_nodes`` (the paper keeps 3
  nodes so the cluster survives master upgrades).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.api import KubeApiServer
from repro.cluster.node import MachineType, N1_STANDARD_4, Node, PREEMPTIBLE_LABEL
from repro.cluster.pod import Pod
from repro.cluster.resources import ResourceVector
from repro.sim.engine import Engine, PeriodicTask
from repro.sim.rng import RngRegistry
from repro.telemetry.events import NULL_TRACER, Tracer


@dataclass(frozen=True, slots=True)
class PreemptiblePoolConfig:
    """A spot/preemptible node pool alongside the on-demand pool.

    Modeled on GCE preemptible VMs: the provider may reclaim a node at
    any time, delivering a preemption notice and killing the machine
    ``grace_period_s`` later (GCE gives 30 s). Spot capacity is also not
    guaranteed — a reservation can be rejected outright with probability
    ``stockout_prob`` (the pool is "out of stock" for that scan; the
    still-pending pods trigger another attempt on a later scan).
    """

    #: Shape of spot machines; ``None`` reuses the on-demand machine type.
    machine_type: Optional[MachineType] = None
    max_nodes: int = 10
    #: Notice-to-kill window. Pods still on the node when it expires die.
    grace_period_s: float = 30.0
    #: Mean gap between background reclamations (exponential inter-arrival
    #: times from the ``cloud.preempt`` stream); ``None`` disables the
    #: background process — chaos waves can still preempt on demand.
    reclaim_interval_s: Optional[float] = None
    reclaim_start_after_s: float = 0.0
    #: Probability a spot reservation fails for lack of capacity.
    stockout_prob: float = 0.0

    def __post_init__(self) -> None:
        if self.max_nodes < 0:
            raise ValueError(f"max_nodes must be >= 0, got {self.max_nodes}")
        if self.grace_period_s < 0:
            raise ValueError(f"grace_period_s must be >= 0, got {self.grace_period_s}")
        if not 0.0 <= self.stockout_prob <= 1.0:
            raise ValueError(
                f"stockout_prob must be in [0,1], got {self.stockout_prob}"
            )
        if self.reclaim_interval_s is not None and self.reclaim_interval_s <= 0:
            raise ValueError("reclaim_interval_s must be positive when set")


@dataclass(frozen=True, slots=True)
class CloudControllerConfig:
    """Tunables for the node autoscaler.

    ``reservation_mean_s``/``reservation_std_s`` model VM reservation +
    boot + kubelet registration. The *total* pod-observed initialization
    latency additionally includes the image pull; with the default
    registry (500 MB image @ 100 MB/s + 2 s overhead ≈ 7 s) and the 1 s
    container start, reservation ≈ 149 s reproduces fig 6's 157.4 s mean.
    """

    machine_type: MachineType = N1_STANDARD_4
    min_nodes: int = 3
    max_nodes: int = 20
    scan_period_s: float = 10.0
    reservation_mean_s: float = 149.0
    reservation_std_s: float = 4.0
    idle_timeout_s: float = 600.0
    # Floor for the reservation draw; clouds never deliver instantly.
    reservation_floor_s: float = 30.0
    # Cap on machine reservations in flight at once. Cloud managers
    # "process reservation requests in batches" (§IV-B); a finite cap
    # serializes provisioning into batches the way the paper's fig-2 GKE
    # traces show. None = unlimited (provision everything immediately).
    max_concurrent_reservations: int | None = None
    # Probability a reserved machine fails to boot (the VM never joins
    # the cluster; the reservation is simply lost). ChaosInjector can
    # also raise/lower this at runtime for bounded fault windows.
    boot_failure_prob: float = 0.0
    # Optional spot pool. ``min_nodes``/``max_nodes`` above bound only the
    # on-demand pool; the spot pool has its own cap and no minimum.
    preemptible: Optional[PreemptiblePoolConfig] = None

    def __post_init__(self) -> None:
        if self.min_nodes < 0 or self.max_nodes < self.min_nodes:
            raise ValueError(
                f"invalid node bounds min={self.min_nodes} max={self.max_nodes}"
            )
        if self.scan_period_s <= 0:
            raise ValueError("scan_period_s must be positive")
        if not 0.0 <= self.boot_failure_prob <= 1.0:
            raise ValueError(
                f"boot_failure_prob must be in [0,1], got {self.boot_failure_prob}"
            )


class CloudController:
    """Provision/reclaim nodes in response to cluster state."""

    def __init__(
        self,
        engine: Engine,
        api: KubeApiServer,
        rng: RngRegistry,
        config: CloudControllerConfig = CloudControllerConfig(),
        *,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.engine = engine
        self.api = api
        self.rng = rng
        self.config = config
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._node_seq = 0
        self._spot_seq = 0
        self._inflight = 0  # on-demand reservations not yet registered
        self._inflight_spot = 0
        self._idle_since: Dict[str, float] = {}
        self.nodes_provisioned = 0
        self.nodes_removed = 0
        #: Mutable copy of the configured rate so fault injection can
        #: open/close bounded boot-failure windows mid-run.
        self.boot_failure_prob = config.boot_failure_prob
        self.boot_failures = 0
        #: Spot-pool fault accounting.
        self.preemptions = 0
        self.spot_stockouts = 0
        self._loop = PeriodicTask(engine, config.scan_period_s, self.sync, start_after=0.0)
        self._reclaim_loop: Optional[PeriodicTask] = None
        spot = config.preemptible
        if spot is not None and spot.reclaim_interval_s is not None:
            self._reclaim_loop = PeriodicTask(
                engine,
                spot.reclaim_interval_s,
                self._reclaim_tick,
                start_after=spot.reclaim_start_after_s,
                use_return_delay=True,
            )
        # Bootstrap the minimum node pool instantly: the paper's clusters
        # start with their base nodes already running.
        for _ in range(config.min_nodes):
            self._register_node()

    def stop(self) -> None:
        self._loop.stop()
        if self._reclaim_loop is not None:
            self._reclaim_loop.stop()

    # ----------------------------------------------------------- accounting
    def node_count(self) -> int:
        return len([n for n in self.api.nodes() if not n.deleted])

    def ondemand_node_count(self) -> int:
        return len(
            [n for n in self.api.nodes() if not n.deleted and not n.preemptible]
        )

    def spot_node_count(self) -> int:
        return len([n for n in self.api.nodes() if not n.deleted and n.preemptible])

    def target_count(self) -> int:
        """Current on-demand nodes plus reservations in flight."""
        return self.ondemand_node_count() + self._inflight

    def spot_target_count(self) -> int:
        return self.spot_node_count() + self._inflight_spot

    @property
    def spot_machine_type(self) -> MachineType:
        spot = self.config.preemptible
        if spot is None:
            raise RuntimeError("no preemptible pool configured")
        return spot.machine_type or self.config.machine_type

    # ----------------------------------------------------------------- sync
    def sync(self) -> None:
        self._heal_min_pool()
        self._scale_up()
        self._scale_down()

    def _heal_min_pool(self) -> None:
        """Replace crashed nodes so the pool never sits below min_nodes
        (a managed node pool repairs itself the same way)."""
        deficit = self.config.min_nodes - self.target_count()
        for _ in range(max(0, deficit)):
            self._reserve_node()

    # ------------------------------------------------------------- scale-up
    @staticmethod
    def _wants_spot(pod: Pod) -> bool:
        return pod.spec.node_selector.get(PREEMPTIBLE_LABEL) == "true"

    def _scale_up(self) -> None:
        pending = [
            p
            for p in self.api.pending_pods()
            if p.had_event("FailedScheduling") and not p.deletion_requested
        ]
        if not pending:
            return
        spot_pending = [p for p in pending if self._wants_spot(p)]
        ondemand_pending = [p for p in pending if not self._wants_spot(p)]
        self._scale_up_pool(ondemand_pending, preemptible=False)
        if self.config.preemptible is not None:
            self._scale_up_pool(spot_pending, preemptible=True)

    def _scale_up_pool(self, pending: List[Pod], *, preemptible: bool) -> None:
        if not pending:
            return
        if preemptible:
            spot = self.config.preemptible
            assert spot is not None
            machine_type = self.spot_machine_type
            inflight = self._inflight_spot
            headroom = spot.max_nodes - self.spot_target_count()
        else:
            machine_type = self.config.machine_type
            inflight = self._inflight
            headroom = self.config.max_nodes - self.target_count()
        needed = self._nodes_needed(pending, machine_type, preemptible=preemptible)
        needed -= inflight
        to_add = max(0, min(needed, headroom))
        if self.config.max_concurrent_reservations is not None:
            batch_room = self.config.max_concurrent_reservations - (
                self._inflight + self._inflight_spot
            )
            to_add = max(0, min(to_add, batch_room))
        for _ in range(to_add):
            self._reserve_node(preemptible=preemptible)

    def _nodes_needed(
        self, pending: List[Pod], machine_type: MachineType, *, preemptible: bool
    ) -> int:
        """First-fit-decreasing estimate of new nodes for pending pods.

        Pending pods are first packed into the *existing* ready nodes'
        free capacity — the scheduler simply may not have bound them yet
        — and only the overflow counts toward new machines (the upstream
        cluster autoscaler runs the same simulated-scheduling check).
        Each pool packs only into its own nodes.
        """
        # Hot at depth (tens of thousands of pending pods against a
        # thousand-node fleet), so the two first-fit scans run over
        # component floats instead of ResourceVectors, and consecutive
        # identical requests resume where the previous one landed: the
        # entries before a request's landing slot were left unchanged, so
        # they would reject an identical request again. Both shortcuts
        # reproduce the original packing (and therefore the returned node
        # count) bit-for-bit.
        alloc = machine_type.allocatable
        alloc_c, alloc_m, alloc_d = alloc.cores, alloc.memory_mb, alloc.disk_mb
        eps = 1e-9  # fits_in's float-drift epsilon
        requests = sorted(
            (p.spec.request for p in pending),
            key=lambda r: r.cores,
            reverse=True,
        )
        free_c: List[float] = []
        free_m: List[float] = []
        free_d: List[float] = []
        for n in self.api.ready_nodes():
            if not n.unschedulable and n.preemptible == preemptible:
                free = n.free()
                free_c.append(free.cores)
                free_m.append(free.memory_mb)
                free_d.append(free.disk_mb)
        bins_c: List[float] = []
        bins_m: List[float] = []
        bins_d: List[float] = []
        unpackable = 0
        prev_req: Optional[ResourceVector] = None
        free_start = 0      # resume index into the existing-free scan
        free_exhausted = False  # previous identical request fit no node
        bins_start = 0      # resume index into the new-bins scan
        for req in requests:
            if req != prev_req:
                prev_req = req
                free_start = 0
                free_exhausted = False
                bins_start = 0
            if not (
                req.cores <= alloc_c + eps
                and req.memory_mb <= alloc_m + eps
                and req.disk_mb <= alloc_d + eps
            ):
                unpackable += 1  # can never fit; don't provision for it
                continue
            req_c, req_m, req_d = req.cores, req.memory_mb, req.disk_mb
            placed = False
            if not free_exhausted:
                for i in range(free_start, len(free_c)):
                    if (
                        req_c <= free_c[i] + eps
                        and req_m <= free_m[i] + eps
                        and req_d <= free_d[i] + eps
                    ):
                        free_c[i] = max(free_c[i] - req_c, 0.0)
                        free_m[i] = max(free_m[i] - req_m, 0.0)
                        free_d[i] = max(free_d[i] - req_d, 0.0)
                        free_start = i
                        placed = True
                        break
                else:
                    free_exhausted = True
            if placed:
                continue
            for i in range(bins_start, len(bins_c)):
                if (
                    req_c <= (alloc_c - bins_c[i]) + eps
                    and req_m <= (alloc_m - bins_m[i]) + eps
                    and req_d <= (alloc_d - bins_d[i]) + eps
                ):
                    bins_c[i] = bins_c[i] + req_c
                    bins_m[i] = bins_m[i] + req_m
                    bins_d[i] = bins_d[i] + req_d
                    bins_start = i
                    break
            else:
                bins_c.append(req_c)
                bins_m.append(req_m)
                bins_d.append(req_d)
                bins_start = len(bins_c) - 1
        return len(bins_c)

    def _reserve_node(self, *, preemptible: bool = False) -> None:
        if preemptible:
            spot = self.config.preemptible
            assert spot is not None
            if spot.stockout_prob > 0 and (
                self.rng.uniform("cloud.spot_stockout", 0.0, 1.0)
                < spot.stockout_prob
            ):
                # The provider has no spot capacity to sell right now;
                # the request fails outright (no VM, no retry here — the
                # still-pending pods drive another attempt next scan).
                self.spot_stockouts += 1
                self.tracer.emit("cluster", "node.spot_stockout", "fault")
                return
            self._inflight_spot += 1
        else:
            self._inflight += 1
        latency = self.rng.normal(
            "cloud.reserve",
            self.config.reservation_mean_s,
            self.config.reservation_std_s,
            floor=self.config.reservation_floor_s,
        )
        if self.tracer.enabled:
            self.tracer.emit(
                "cluster", "node.reserve",
                latency_s=latency,
                inflight=self._inflight + self._inflight_spot,
                preemptible=preemptible,
            )
        self.engine.call_in(latency, self._reservation_complete, preemptible)

    def _reservation_complete(self, preemptible: bool = False) -> None:
        if preemptible:
            self._inflight_spot -= 1
        else:
            self._inflight -= 1
        if self.boot_failure_prob > 0 and (
            self.rng.uniform("cloud.boot_failure", 0.0, 1.0)
            < self.boot_failure_prob
        ):
            # The VM never boots / fails kubelet registration; the next
            # sync notices the still-pending pods and reserves again.
            self.boot_failures += 1
            self.tracer.emit("cluster", "node.boot_failure", "fault")
            return
        if preemptible:
            spot = self.config.preemptible
            if spot is None or self.spot_node_count() >= spot.max_nodes:
                return
        elif self.ondemand_node_count() >= self.config.max_nodes:
            return  # raced with another provisioning source; drop the VM
        self._register_node(preemptible=preemptible)

    def _register_node(self, *, preemptible: bool = False) -> Node:
        if preemptible:
            self._spot_seq += 1
            name = f"spot-{self._spot_seq:03d}"
            machine_type = self.spot_machine_type
        else:
            self._node_seq += 1
            name = f"node-{self._node_seq:03d}"
            machine_type = self.config.machine_type
        node = Node(
            name,
            machine_type,
            creation_time=self.engine.now,
            preemptible=preemptible,
        )
        node.ready = True
        node.ready_time = self.engine.now
        self.api.create(node)
        self.nodes_provisioned += 1
        if self.tracer.enabled:
            self.tracer.emit(
                "cluster", "node.ready",
                node=node.name, total=self.nodes_provisioned,
            )
        return node

    # ----------------------------------------------------------- preemption
    def _reclaim_tick(self) -> float:
        """Background spot reclamation: preempt one live spot node, then
        wait an exponential gap (memoryless, like real capacity churn)."""
        spot = self.config.preemptible
        assert spot is not None and spot.reclaim_interval_s is not None
        self.preempt_random_spot_nodes(1)
        gap = float(
            self.rng.stream("cloud.preempt.schedule").exponential(
                spot.reclaim_interval_s
            )
        )
        return max(1.0, gap)

    def preemptable_spot_nodes(self) -> List[Node]:
        """Live spot nodes with no reclamation notice outstanding."""
        return [
            n
            for n in self.api.nodes()
            if n.preemptible
            and n.ready
            and not n.deleted
            and n.preemption_notice_at is None
        ]

    def preempt_random_spot_nodes(self, count: int = 1) -> int:
        """Reclaim up to ``count`` random live spot nodes (seeded draw)."""
        preempted = 0
        for _ in range(count):
            candidates = self.preemptable_spot_nodes()
            if not candidates:
                break
            idx = int(self.rng.stream("cloud.preempt").integers(len(candidates)))
            if self.begin_preemption(candidates[idx]):
                preempted += 1
        return preempted

    def begin_preemption(self, node: Node) -> bool:
        """Fire the provider's reclamation notice for a spot node.

        The node is cordoned immediately and killed (with every pod still
        on it) once the grace window expires. Watchers see the notice as
        a MODIFIED Node event carrying ``preemption_notice_at`` — the
        informer-visible signal HTA's responder reacts to.
        """
        spot = self.config.preemptible
        if spot is None or not node.preemptible:
            return False
        if node.deleted or node.preemption_notice_at is not None:
            return False
        node.preemption_notice_at = self.engine.now
        node.preemption_grace_s = spot.grace_period_s
        node.unschedulable = True
        self.api.mark_modified(node)
        if self.tracer.enabled:
            self.tracer.emit(
                "cluster", "node.preemption_notice", "fault",
                node=node.name, grace_s=spot.grace_period_s,
            )
        self.engine.call_in(spot.grace_period_s, self._complete_preemption, node)
        return True

    def _complete_preemption(self, node: Node) -> None:
        if node.deleted:
            return  # already reclaimed through another path
        for pod in list(node.active_pods()):
            self.api.try_delete("Pod", pod.name)
        node.ready = False
        node.deleted = True
        self._idle_since.pop(node.name, None)
        self.api.try_delete("Node", node.name)
        self.preemptions += 1
        self.tracer.emit("cluster", "node.preempted", "fault", node=node.name)

    # ----------------------------------------------------------- scale-down
    def _scale_down(self) -> None:
        # Never reclaim capacity while unschedulable pods wait: removing a
        # node the scheduler is about to use would thrash (the upstream
        # cluster autoscaler applies the same guard).
        if any(
            p.had_event("FailedScheduling") and not p.deletion_requested
            for p in self.api.pending_pods()
        ):
            self._idle_since.clear()
            return
        nodes = [
            n
            for n in self.api.nodes()
            if not n.deleted and n.preemption_notice_at is None
        ]
        now = self.engine.now
        removable: List[Node] = []
        for node in nodes:
            if node.is_idle():
                since = self._idle_since.setdefault(node.name, now)
                if now - since >= self.config.idle_timeout_s:
                    removable.append(node)
            else:
                self._idle_since.pop(node.name, None)
        # Remove newest-first, never dropping the on-demand pool below its
        # minimum (the spot pool has no floor).
        removable.sort(key=lambda n: n.meta.creation_time, reverse=True)
        for node in removable:
            if (
                not node.preemptible
                and self.ondemand_node_count() <= self.config.min_nodes
            ):
                continue
            self._remove_node(node)

    def _remove_node(self, node: Node) -> None:
        if node.active_pods():
            return  # became busy between the scan and now
        node.unschedulable = True
        node.deleted = True
        self._idle_since.pop(node.name, None)
        self.api.try_delete("Node", node.name)
        self.nodes_removed += 1
        if self.tracer.enabled:
            self.tracer.emit("cluster", "node.removed", node=node.name)
