"""Nodes and machine types.

The paper evaluates on GKE ``n1-standard-4`` instances (4 vCPU, 15 GB RAM,
100 GB SSD) for the main experiments and 3-vCPU/12 GB nodes for the fig-4
sizing study; both are provided as ready-made :class:`MachineType`
constants. A node tracks its bound pods and allocatable capacity; the
kubelet (one per node) handles image caching and container start.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.cluster.objects import KubeObject
from repro.cluster.pod import Pod, PodPhase
from repro.cluster.resources import ResourceVector


@dataclass(frozen=True, slots=True)
class MachineType:
    """A cloud machine shape, with capacity and network characteristics."""

    name: str
    capacity: ResourceVector
    # Bandwidth of the node's NIC; caps each node's share of master egress.
    nic_bandwidth_mbps: float = 1000.0
    # System/kubelet reservation withheld from pods (GKE reserves a slice).
    system_reserved: ResourceVector = ResourceVector.zero()

    @property
    def allocatable(self) -> ResourceVector:
        alloc = self.capacity - self.system_reserved
        if not alloc.is_nonnegative():
            raise ValueError(f"machine type {self.name}: reservation exceeds capacity")
        return alloc


#: The paper's main evaluation instance: 4 vCPU, 15 GB RAM, 100 GB SSD.
N1_STANDARD_4 = MachineType(
    name="n1-standard-4",
    capacity=ResourceVector(cores=4, memory_mb=15 * 1024, disk_mb=100 * 1024),
)

#: The fig-4 sizing-study instance: 3 vCPU, 12 GB RAM.
GKE_SMALL_3CPU = MachineType(
    name="gke-small-3cpu",
    capacity=ResourceVector(cores=3, memory_mb=12 * 1024, disk_mb=100 * 1024),
)

#: n1-standard-4 with GKE's system/kubelet reservation withheld: 3 cores
#: and ~14 GB allocatable per node. Twenty such nodes give the "20 nodes,
#: 60 cores" capacity limit the paper quotes for fig 10.
N1_STANDARD_4_RESERVED = MachineType(
    name="n1-standard-4-reserved",
    capacity=ResourceVector(cores=4, memory_mb=15 * 1024, disk_mb=100 * 1024),
    system_reserved=ResourceVector(cores=1, memory_mb=1024, disk_mb=10 * 1024),
)


#: Node/pod-selector label distinguishing the pools (GKE surfaces the
#: equivalent ``cloud.google.com/gke-preemptible`` label).
PREEMPTIBLE_LABEL = "preemptible"


class Node(KubeObject):
    """A cluster node: allocatable capacity, bound pods, image cache."""

    __slots__ = (
        "machine_type", "preemptible", "preemption_notice_at",
        "preemption_grace_s", "ready", "ready_time", "pods",
        "_requested_cache", "cached_images", "unschedulable", "deleted",
    )

    kind = "Node"

    def __init__(
        self,
        name: str,
        machine_type: MachineType = N1_STANDARD_4,
        creation_time: float = 0.0,
        *,
        preemptible: bool = False,
    ) -> None:
        super().__init__(
            name,
            {
                "machine-type": machine_type.name,
                PREEMPTIBLE_LABEL: "true" if preemptible else "false",
            },
            creation_time,
        )
        self.machine_type = machine_type
        #: Spot/preemptible capacity: the provider may reclaim this node
        #: at any time with only a short grace notice.
        self.preemptible = preemptible
        #: Set when the provider fires the reclamation notice; the node is
        #: cordoned and will be killed ``grace_period_s`` later.
        self.preemption_notice_at: Optional[float] = None
        #: The notice's grace window (how long until the kill); set
        #: alongside ``preemption_notice_at`` so responders can decide
        #: which in-flight work still has time to finish.
        self.preemption_grace_s: Optional[float] = None
        self.ready = False
        self.ready_time: Optional[float] = None
        self.pods: List[Pod] = []
        #: Memoized :meth:`requested` fold; dropped on bind/unbind and on
        #: a bound pod turning terminal (the only events that change the
        #: fold). Recomputed with the original loop so the cached floats
        #: are bit-identical to an on-demand fold.
        self._requested_cache: Optional[ResourceVector] = None
        self.cached_images: Set[str] = set()
        self.unschedulable = False  # cordoned during drain-for-removal
        self.deleted = False

    # ------------------------------------------------------------- capacity
    @property
    def capacity(self) -> ResourceVector:
        return self.machine_type.capacity

    @property
    def allocatable(self) -> ResourceVector:
        return self.machine_type.allocatable

    def requested(self) -> ResourceVector:
        """Sum of resource requests of non-terminal pods bound here."""
        cached = self._requested_cache
        if cached is None:
            cached = ResourceVector.zero()
            for pod in self.pods:
                if not pod.phase.terminal:
                    cached = cached + pod.spec.request
            self._requested_cache = cached
        return cached

    def invalidate_requested(self) -> None:
        """The bound-pod set (or a bound pod's phase) changed."""
        self._requested_cache = None

    def free(self) -> ResourceVector:
        return (self.allocatable - self.requested()).clamp_floor(0.0)

    def can_fit(self, request: ResourceVector) -> bool:
        return (
            self.ready
            and not self.unschedulable
            and not self.deleted
            and request.fits_in(self.allocatable - self.requested())
        )

    # ----------------------------------------------------------------- pods
    def bind(self, pod: Pod) -> None:
        if pod in self.pods:
            raise RuntimeError(f"pod {pod.name} already bound to {self.name}")
        self.pods.append(pod)
        self._requested_cache = None

    def unbind(self, pod: Pod) -> None:
        try:
            self.pods.remove(pod)
        except ValueError:
            pass
        self._requested_cache = None

    def active_pods(self) -> List[Pod]:
        return [p for p in self.pods if not p.phase.terminal]

    def is_idle(self) -> bool:
        """No non-terminal pods bound: a candidate for scale-down."""
        return self.ready and not self.active_pods()

    def cpu_usage(self) -> float:
        """Instantaneous CPU usage across running pods, in cores."""
        return sum(p.current_cpu_usage() for p in self.pods if p.phase is PodPhase.RUNNING)

    def utilization(self) -> float:
        """CPU usage as a fraction of node capacity (0..1)."""
        cap = self.capacity.cores
        return self.cpu_usage() / cap if cap > 0 else 0.0

    def describe(self) -> Dict[str, object]:
        """Diagnostic snapshot (used by experiment reports and tests)."""
        return {
            "name": self.name,
            "machine_type": self.machine_type.name,
            "ready": self.ready,
            "preemptible": self.preemptible,
            "pods": [p.name for p in self.active_pods()],
            "requested": self.requested(),
            "free": self.free(),
        }

    def __repr__(self) -> str:  # pragma: no cover
        state = "ready" if self.ready else "not-ready"
        return f"<Node {self.name!r} {state} pods={len(self.active_pods())}>"
