"""A Kubernetes-like container-orchestrator substrate (simulated).

The paper runs on GKE; this package rebuilds the pieces of Kubernetes its
evaluation actually exercises, as cooperating control loops on the
discrete-event engine:

* :mod:`~repro.cluster.api` — an API server with typed object stores and
  watch streams (ADDED/MODIFIED/DELETED), consumed by informers;
* :mod:`~repro.cluster.pod` / :mod:`~repro.cluster.node` — the objects,
  including the fig-9 worker-pod lifecycle (``No Available Node`` →
  ``No Container Image`` → ``Running`` → ``Stopped``) surfaced as pod
  events exactly as HTA's informer expects;
* :mod:`~repro.cluster.scheduler` — a kube-scheduler binding pending pods
  to nodes with sufficient allocatable resources;
* :mod:`~repro.cluster.kubelet` — per-node agent pulling images (with a
  node-local image cache) and starting/stopping containers;
* :mod:`~repro.cluster.cloud` — the cloud-controller-manager / cluster
  autoscaler provisioning nodes for unschedulable pods (with the measured
  GKE reservation latency) and reclaiming idle nodes;
* :mod:`~repro.cluster.metrics_server` — windowed per-pod CPU averages;
* :mod:`~repro.cluster.replicaset` — a replica controller for worker pods
  (what HPA scales);
* :mod:`~repro.cluster.hpa` — the Horizontal Pod Autoscaler baseline:
  ratio control with tolerance, sync period, scale-up rate caps, and the
  scale-down stabilization window the paper discusses;
* :mod:`~repro.cluster.cluster` — a facade wiring all of the above.
"""

from repro.cluster.resources import ResourceVector
from repro.cluster.images import ContainerImage, ImageRegistry
from repro.cluster.objects import KubeObject, ObjectMeta, Service, StatefulSet
from repro.cluster.pod import Pod, PodPhase, PodSpec, PodEvent
from repro.cluster.node import (
    MachineType,
    Node,
    N1_STANDARD_4,
    N1_STANDARD_4_RESERVED,
    GKE_SMALL_3CPU,
)
from repro.cluster.api import KubeApiServer, WatchEvent, WatchEventType
from repro.cluster.informer import Informer
from repro.cluster.scheduler import KubeScheduler
from repro.cluster.kubelet import Kubelet
from repro.cluster.cloud import CloudController, CloudControllerConfig
from repro.cluster.metrics_server import MetricsServer
from repro.cluster.replicaset import WorkerReplicaSet
from repro.cluster.hpa import HorizontalPodAutoscaler, HpaConfig
from repro.cluster.statefulset import StatefulSetController
from repro.cluster.chaos import ChaosInjector
from repro.cluster.cluster import Cluster, ClusterConfig

__all__ = [
    "ResourceVector",
    "ContainerImage",
    "ImageRegistry",
    "KubeObject",
    "ObjectMeta",
    "Service",
    "StatefulSet",
    "Pod",
    "PodPhase",
    "PodSpec",
    "PodEvent",
    "MachineType",
    "Node",
    "N1_STANDARD_4",
    "N1_STANDARD_4_RESERVED",
    "GKE_SMALL_3CPU",
    "KubeApiServer",
    "WatchEvent",
    "WatchEventType",
    "Informer",
    "KubeScheduler",
    "Kubelet",
    "CloudController",
    "CloudControllerConfig",
    "MetricsServer",
    "WorkerReplicaSet",
    "HorizontalPodAutoscaler",
    "HpaConfig",
    "StatefulSetController",
    "ChaosInjector",
    "Cluster",
    "ClusterConfig",
]
