"""A replica controller for worker pods — what HPA scales.

The HPA baseline needs "a deployment of worker pods" whose replica count
it adjusts. :class:`WorkerReplicaSet` maintains ``replicas`` pods from a
spec factory; scaling down **deletes** pods (newest first), which kills
the worker container and interrupts its running tasks — precisely the
disruption (§II-C) that motivates HTA's drain-through-Work-Queue design.
HTA does *not* use this controller; it creates and drains pods directly.
"""

from __future__ import annotations

import itertools
from typing import Callable, List, Optional

from repro.cluster.api import KubeApiServer, WatchEvent, WatchEventType
from repro.cluster.pod import Pod, PodPhase, PodSpec
from repro.sim.engine import Engine

SpecFactory = Callable[[str], PodSpec]


class WorkerReplicaSet:
    """Maintains N replicas of a worker pod template."""

    def __init__(
        self,
        engine: Engine,
        api: KubeApiServer,
        name: str,
        spec_factory: SpecFactory,
        *,
        replicas: int = 0,
    ) -> None:
        self.engine = engine
        self.api = api
        self.name = name
        self.spec_factory = spec_factory
        self.replicas = 0
        self._seq = itertools.count(1)
        self.pods_created = 0
        self.pods_deleted = 0
        api.watch("Pod", self._on_pod_event, replay_existing=False)
        if replicas:
            self.scale_to(replicas)

    # ------------------------------------------------------------ selection
    @property
    def selector(self) -> dict:
        return {"replicaset": self.name}

    def pods(self) -> List[Pod]:
        return [
            p
            for p in self.api.pods(self.selector)
            if not p.phase.terminal and not p.deletion_requested
        ]

    def ready_pods(self) -> List[Pod]:
        return [p for p in self.pods() if p.phase is PodPhase.RUNNING]

    def ready_count(self) -> int:
        return len(self.ready_pods())

    def current_count(self) -> int:
        return len(self.pods())

    # -------------------------------------------------------------- scaling
    def scale_to(self, replicas: int) -> int:
        """Set the desired replica count; returns the applied delta."""
        if replicas < 0:
            raise ValueError(f"replicas must be non-negative, got {replicas}")
        self.replicas = replicas
        return self._reconcile()

    def _reconcile(self) -> int:
        current = self.pods()
        delta = self.replicas - len(current)
        if delta > 0:
            for _ in range(delta):
                self._create_pod()
        elif delta < 0:
            # Delete newest first (Kubernetes' default victim ordering
            # prefers not-yet-ready and most-recent pods).
            victims = sorted(
                current,
                key=lambda p: (p.phase is PodPhase.RUNNING, p.meta.creation_time),
                reverse=True,
            )[: -delta]
            for pod in victims:
                self.api.try_delete("Pod", pod.name)
                self.pods_deleted += 1
        return delta

    def _create_pod(self) -> Pod:
        pod_name = f"{self.name}-{next(self._seq):04d}"
        spec = self.spec_factory(pod_name)
        labels = dict(spec.labels)
        labels["replicaset"] = self.name
        spec = PodSpec(image=spec.image, request=spec.request, labels=labels)
        pod = Pod(pod_name, spec, creation_time=self.engine.now)
        self.api.create(pod)
        self.pods_created += 1
        return pod

    # --------------------------------------------------------------- events
    def _on_pod_event(self, event: WatchEvent) -> None:
        pod = event.obj
        if not isinstance(pod, Pod) or pod.meta.labels.get("replicaset") != self.name:
            return
        if event.type is WatchEventType.DELETED or (
            event.type is WatchEventType.MODIFIED and pod.phase.terminal
        ):
            # Replace failed/removed pods to hold the desired count.
            self.engine.call_soon(self._reconcile)
