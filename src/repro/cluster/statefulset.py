"""The StatefulSet controller: sticky-identity pods with stable storage.

§V-A: "To avoid loss of intermediate data and ensure a restarted master
pod can run on the same physical node with the same identity, we
encapsulate the master pod inside a StatefulSet and dump intermediate
data into a persistent volume."

The controller maintains ``replicas`` pods named ``<set>-0 … <set>-N``
from the set's template. When a pod dies (node crash, deletion), its
*replacement keeps the same ordinal name* — sticky identity — and is
recreated after a restart backoff. The persistent volume's data survival
is the consumer's contract: whoever binds a process to the pod (e.g.
:class:`repro.hta.deployment.MasterDeployment`) keeps its state across
restarts, exactly as a volume-backed Work Queue master does.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.cluster.api import KubeApiServer, NotFoundError, WatchEvent, WatchEventType
from repro.cluster.objects import StatefulSet
from repro.cluster.pod import Pod, PodSpec
from repro.sim.engine import Engine


class StatefulSetController:
    """Reconciles every StatefulSet object in the API server."""

    #: Delay before a failed pod's sticky replacement is created
    #: (crash-loop damping; Kubernetes applies a similar backoff).
    RESTART_BACKOFF_S = 10.0

    def __init__(self, engine: Engine, api: KubeApiServer) -> None:
        self.engine = engine
        self.api = api
        self.pods_created = 0
        self.pods_replaced = 0
        self._pending_restart: Dict[str, bool] = {}
        api.watch("StatefulSet", self._on_set_event, replay_existing=True)
        api.watch("Pod", self._on_pod_event, replay_existing=False)

    # ------------------------------------------------------------ reconcile
    def _on_set_event(self, event: WatchEvent) -> None:
        sset = event.obj
        if not isinstance(sset, StatefulSet):
            return
        if event.type in (WatchEventType.ADDED, WatchEventType.MODIFIED):
            self._reconcile(sset)

    def _on_pod_event(self, event: WatchEvent) -> None:
        pod = event.obj
        if not isinstance(pod, Pod):
            return
        set_name = pod.meta.labels.get("statefulset")
        if set_name is None:
            return
        sset = self.api.try_get("StatefulSet", set_name)
        if not isinstance(sset, StatefulSet):
            return
        if event.type is WatchEventType.DELETED or (
            event.type is WatchEventType.MODIFIED and pod.phase.terminal
        ):
            # Sticky replacement, after a backoff; coalesce duplicates.
            if not self._pending_restart.get(pod.name):
                self._pending_restart[pod.name] = True
                self.engine.call_in(
                    self.RESTART_BACKOFF_S, self._restart, sset, pod.name
                )
        self._update_ready_count(sset)
        if event.type is WatchEventType.MODIFIED and pod.ready:
            self.api.mark_modified(sset)

    def _restart(self, sset: StatefulSet, pod_name: str) -> None:
        self._pending_restart.pop(pod_name, None)
        if self.api.try_get("StatefulSet", sset.name) is not sset:
            return  # set deleted meanwhile
        # Remove the terminal incarnation so the name is free again.
        existing = self.api.try_get("Pod", pod_name)
        if isinstance(existing, Pod):
            if not existing.phase.terminal:
                return  # someone else already replaced it
            self.api.try_delete("Pod", pod_name)
        self._create_pod(sset, pod_name, replacement=True)

    def _reconcile(self, sset: StatefulSet) -> None:
        if sset.template is None:
            return
        for ordinal in range(sset.replicas):
            pod_name = f"{sset.name}-{ordinal}"
            existing = self.api.try_get("Pod", pod_name)
            if existing is None and not self._pending_restart.get(pod_name):
                self._create_pod(sset, pod_name)

    def _create_pod(self, sset: StatefulSet, pod_name: str, replacement: bool = False) -> Pod:
        template = sset.template
        assert isinstance(template, PodSpec)
        labels = dict(template.labels)
        labels["statefulset"] = sset.name
        spec = PodSpec(image=template.image, request=template.request, labels=labels)
        pod = Pod(pod_name, spec, creation_time=self.engine.now)
        self.api.create(pod)
        self.pods_created += 1
        if replacement:
            self.pods_replaced += 1
        return pod

    def _update_ready_count(self, sset: StatefulSet) -> None:
        pods = self.pods_of(sset)
        sset.ready_replicas = sum(1 for p in pods if p.ready)

    # ---------------------------------------------------------------- reads
    def pods_of(self, sset: StatefulSet) -> List[Pod]:
        return [
            p
            for p in self.api.pods({"statefulset": sset.name})
            if not p.phase.terminal
        ]
