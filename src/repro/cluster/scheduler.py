"""The kube-scheduler: binds pending pods to nodes.

Runs as a periodic control loop (plus an immediate kick whenever a pod is
added or a node becomes ready, so small experiments aren't dominated by
sync latency). Pods that fit nowhere get a ``FailedScheduling`` event with
an *Insufficient Resource* message — the fig-9 "No Available Node" state
that both the cloud controller and HTA's init-time tracker key off.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.cluster.api import KubeApiServer, WatchEvent, WatchEventType
from repro.cluster.node import Node
from repro.cluster.pod import Pod, PodPhase, REASON_FAILED_SCHEDULING
from repro.sim.engine import Engine, PeriodicTask
from repro.telemetry.events import NULL_TRACER, Tracer


class KubeScheduler:
    """First-fit / spread scheduler over ready nodes.

    ``strategy`` selects the node-scoring policy among candidates that fit:

    * ``"least-requested"`` (default, mirrors kube-scheduler's spreading):
      pick the node with the most free CPU;
    * ``"binpack"``: pick the node with the least free CPU (used by the
      ablation benchmarks to show HTA is policy-agnostic).
    """

    def __init__(
        self,
        engine: Engine,
        api: KubeApiServer,
        *,
        sync_period: float = 1.0,
        strategy: str = "least-requested",
        tracer: Optional[Tracer] = None,
    ) -> None:
        if strategy not in ("least-requested", "binpack"):
            raise ValueError(f"unknown scheduling strategy {strategy!r}")
        self.engine = engine
        self.api = api
        self.strategy = strategy
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.binds = 0
        #: (Pod, Node) kind versions as of the end of the last pass. Every
        #: cluster mutation a pass can observe (pod added/bound/phased,
        #: node ready/cordoned/deleted) flows through the API server's
        #: notify and bumps one of the two, so matching versions mean the
        #: pass would repeat the previous one exactly: bind nothing and
        #: re-record nothing (FailedScheduling events are once-per-episode).
        self._synced_state: Optional[tuple] = None
        self._loop = PeriodicTask(engine, sync_period, self.sync, start_after=0.0)
        api.watch("Pod", self._on_pod_event, replay_existing=False)
        api.watch("Node", self._on_node_event, replay_existing=False)

    def stop(self) -> None:
        self._loop.stop()

    # --------------------------------------------------------------- events
    def _on_pod_event(self, event: WatchEvent) -> None:
        if event.type is WatchEventType.ADDED:
            self.sync()

    def _on_node_event(self, event: WatchEvent) -> None:
        if event.type in (WatchEventType.ADDED, WatchEventType.MODIFIED):
            node = event.obj
            if isinstance(node, Node) and node.ready:
                self.sync()

    # ----------------------------------------------------------------- sync
    def sync(self) -> int:
        """One scheduling pass; returns the number of pods bound."""
        state = (self.api.kind_version("Pod"), self.api.kind_version("Node"))
        if state == self._synced_state:
            return 0  # nothing changed since the last pass; see __init__
        bound = 0
        pending = self.api.pending_pods()
        if not pending:
            self._synced_state = state
            return 0
        # One relist per pass: binding mutates node *state*, never the
        # node set, and can_fit re-checks ready/cordoned/deleted per pod,
        # so the per-pod relist the loop used to do was pure overhead.
        nodes = self.api.nodes()
        # Within a pass capacity only shrinks, so once a request (plus
        # node-selector) finds no seat, every identical pending pod after
        # it fails too — skip their node scans, but still record the
        # FailedScheduling event per pod exactly as before.
        unplaceable: set = set()
        for pod in pending:
            selector = pod.spec.node_selector
            sig = (
                pod.spec.request,
                tuple(sorted(selector.items())) if selector else None,
            )
            if sig in unplaceable:
                # Inline _record_unschedulable's common early-exit (the
                # episode is already recorded) — at depth this branch runs
                # once per pending pod per pass.
                if not (
                    pod.events
                    and pod.events[-1].reason == REASON_FAILED_SCHEDULING
                ):
                    self._record_unschedulable(pod)
                continue
            node = self._select_node(pod, nodes)
            if node is None:
                unplaceable.add(sig)
                self._record_unschedulable(pod)
                continue
            pod.mark_scheduled(self.engine.now, node)
            node.bind(pod)
            self.api.mark_modified(pod)
            self.binds += 1
            bound += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    "cluster", "scheduler.bind", pod=pod.name, node=node.name
                )
        # Recompute: the pass itself bumps versions (binds, events).
        self._synced_state = (
            self.api.kind_version("Pod"),
            self.api.kind_version("Node"),
        )
        return bound

    @staticmethod
    def _selector_matches(pod: Pod, node: Node) -> bool:
        selector = pod.spec.node_selector
        if not selector:
            return True
        labels = node.meta.labels
        return all(labels.get(k) == v for k, v in selector.items())

    def _select_node(self, pod: Pod, nodes: Optional[List[Node]] = None) -> Optional[Node]:
        if nodes is None:
            nodes = self.api.ready_nodes()
        candidates: List[Node] = [
            n
            for n in nodes
            if self._selector_matches(pod, n) and n.can_fit(pod.spec.request)
        ]
        if not candidates:
            return None
        if self.strategy == "least-requested":
            return max(candidates, key=lambda n: (n.free().cores, n.name))
        return min(candidates, key=lambda n: (n.free().cores, n.name))

    def _record_unschedulable(self, pod: Pod) -> None:
        if pod.phase is not PodPhase.PENDING:
            return
        # Emit once per pod per unschedulable episode (a fresh event is
        # appended again only after the pod has been scheduled and somehow
        # returned; for our lifecycle, once is exactly right).
        if pod.events and pod.events[-1].reason == REASON_FAILED_SCHEDULING:
            return
        pod.add_event(self.engine.now, REASON_FAILED_SCHEDULING, "Insufficient Resource")
        if self.tracer.enabled:
            self.tracer.emit("cluster", "scheduler.unschedulable", pod=pod.name)
        self.api.mark_modified(pod)
