"""The kube-scheduler: binds pending pods to nodes.

Runs as a periodic control loop (plus an immediate kick whenever a pod is
added or a node becomes ready, so small experiments aren't dominated by
sync latency). Pods that fit nowhere get a ``FailedScheduling`` event with
an *Insufficient Resource* message — the fig-9 "No Available Node" state
that both the cloud controller and HTA's init-time tracker key off.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.cluster.api import KubeApiServer, WatchEvent, WatchEventType
from repro.cluster.node import Node
from repro.cluster.pod import Pod, PodPhase, REASON_FAILED_SCHEDULING
from repro.sim.engine import Engine, PeriodicTask
from repro.telemetry.events import NULL_TRACER, Tracer


class KubeScheduler:
    """First-fit / spread scheduler over ready nodes.

    ``strategy`` selects the node-scoring policy among candidates that fit:

    * ``"least-requested"`` (default, mirrors kube-scheduler's spreading):
      pick the node with the most free CPU;
    * ``"binpack"``: pick the node with the least free CPU (used by the
      ablation benchmarks to show HTA is policy-agnostic).
    """

    def __init__(
        self,
        engine: Engine,
        api: KubeApiServer,
        *,
        sync_period: float = 1.0,
        strategy: str = "least-requested",
        tracer: Optional[Tracer] = None,
    ) -> None:
        if strategy not in ("least-requested", "binpack"):
            raise ValueError(f"unknown scheduling strategy {strategy!r}")
        self.engine = engine
        self.api = api
        self.strategy = strategy
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.binds = 0
        self._loop = PeriodicTask(engine, sync_period, self.sync, start_after=0.0)
        api.watch("Pod", self._on_pod_event, replay_existing=False)
        api.watch("Node", self._on_node_event, replay_existing=False)

    def stop(self) -> None:
        self._loop.stop()

    # --------------------------------------------------------------- events
    def _on_pod_event(self, event: WatchEvent) -> None:
        if event.type is WatchEventType.ADDED:
            self.sync()

    def _on_node_event(self, event: WatchEvent) -> None:
        if event.type in (WatchEventType.ADDED, WatchEventType.MODIFIED):
            node = event.obj
            if isinstance(node, Node) and node.ready:
                self.sync()

    # ----------------------------------------------------------------- sync
    def sync(self) -> int:
        """One scheduling pass; returns the number of pods bound."""
        bound = 0
        for pod in self.api.pending_pods():
            node = self._select_node(pod)
            if node is None:
                self._record_unschedulable(pod)
                continue
            pod.mark_scheduled(self.engine.now, node)
            node.bind(pod)
            self.api.mark_modified(pod)
            self.binds += 1
            bound += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    "cluster", "scheduler.bind", pod=pod.name, node=node.name
                )
        return bound

    @staticmethod
    def _selector_matches(pod: Pod, node: Node) -> bool:
        selector = pod.spec.node_selector
        if not selector:
            return True
        labels = node.meta.labels
        return all(labels.get(k) == v for k, v in selector.items())

    def _select_node(self, pod: Pod) -> Optional[Node]:
        candidates: List[Node] = [
            n
            for n in self.api.ready_nodes()
            if self._selector_matches(pod, n) and n.can_fit(pod.spec.request)
        ]
        if not candidates:
            return None
        if self.strategy == "least-requested":
            return max(candidates, key=lambda n: (n.free().cores, n.name))
        return min(candidates, key=lambda n: (n.free().cores, n.name))

    def _record_unschedulable(self, pod: Pod) -> None:
        if pod.phase is not PodPhase.PENDING:
            return
        # Emit once per pod per unschedulable episode (a fresh event is
        # appended again only after the pod has been scheduled and somehow
        # returned; for our lifecycle, once is exactly right).
        if pod.events and pod.events[-1].reason == REASON_FAILED_SCHEDULING:
            return
        pod.add_event(self.engine.now, REASON_FAILED_SCHEDULING, "Insufficient Resource")
        if self.tracer.enabled:
            self.tracer.emit("cluster", "scheduler.unschedulable", pod=pod.name)
        self.api.mark_modified(pod)
