"""Resource vectors shared by Kubernetes scheduling and Work Queue placement.

A :class:`ResourceVector` carries the three dimensions the paper's systems
reason about — CPU cores, memory (MB), and disk (MB). Both the
kube-scheduler ("does this pod fit on this node?") and the Work Queue
master ("does this task fit in this worker's remaining capacity?") use the
same component-wise *fits* partial order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional


@dataclass(frozen=True, slots=True)
class ResourceVector:
    """An immutable (cores, memory_mb, disk_mb) triple.

    Arithmetic is component-wise; comparisons use the *fits* partial order
    (``a.fits_in(b)`` iff every component of ``a`` is ≤ the corresponding
    component of ``b``). Python's rich comparisons are deliberately not
    overloaded with the partial order, since ``not (a <= b)`` does not
    imply ``b <= a`` for vectors.
    """

    cores: float = 0.0
    memory_mb: float = 0.0
    disk_mb: float = 0.0
    #: Lazily memoized hash — vectors key the placement memo tables on
    #: the dispatch hot path, where the generated hash (a fresh tuple per
    #: call) showed up as a top cost. Excluded from eq/repr.
    _hash: Optional[int] = field(default=None, init=False, repr=False, compare=False)

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash((self.cores, self.memory_mb, self.disk_mb))
            object.__setattr__(self, "_hash", h)
        return h

    # ---------------------------------------------------------- constructors
    @staticmethod
    def zero() -> "ResourceVector":
        return ResourceVector(0.0, 0.0, 0.0)

    @staticmethod
    def of_cores(cores: float) -> "ResourceVector":
        """A vector with only the CPU dimension set (common in tests)."""
        return ResourceVector(cores=cores)

    # ------------------------------------------------------------ arithmetic
    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.cores + other.cores,
            self.memory_mb + other.memory_mb,
            self.disk_mb + other.disk_mb,
        )

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.cores - other.cores,
            self.memory_mb - other.memory_mb,
            self.disk_mb - other.disk_mb,
        )

    def scale(self, factor: float) -> "ResourceVector":
        return ResourceVector(
            self.cores * factor, self.memory_mb * factor, self.disk_mb * factor
        )

    def clamp_floor(self, floor: float = 0.0) -> "ResourceVector":
        """Component-wise max with ``floor`` (used after subtraction)."""
        return ResourceVector(
            max(self.cores, floor),
            max(self.memory_mb, floor),
            max(self.disk_mb, floor),
        )

    def max_with(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            max(self.cores, other.cores),
            max(self.memory_mb, other.memory_mb),
            max(self.disk_mb, other.disk_mb),
        )

    def min_with(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            min(self.cores, other.cores),
            min(self.memory_mb, other.memory_mb),
            min(self.disk_mb, other.disk_mb),
        )

    # ------------------------------------------------------------ predicates
    def fits_in(self, capacity: "ResourceVector", epsilon: float = 1e-9) -> bool:
        """True iff this request fits within ``capacity`` component-wise.

        A small epsilon absorbs float drift from repeated add/subtract of
        allocations (e.g. 3 × 1/3-core tasks on a 1-core worker).
        """
        return (
            self.cores <= capacity.cores + epsilon
            and self.memory_mb <= capacity.memory_mb + epsilon
            and self.disk_mb <= capacity.disk_mb + epsilon
        )

    def is_zero(self, epsilon: float = 1e-9) -> bool:
        return (
            abs(self.cores) <= epsilon
            and abs(self.memory_mb) <= epsilon
            and abs(self.disk_mb) <= epsilon
        )

    def is_nonnegative(self, epsilon: float = 1e-9) -> bool:
        return (
            self.cores >= -epsilon
            and self.memory_mb >= -epsilon
            and self.disk_mb >= -epsilon
        )

    def any_positive(self, epsilon: float = 1e-9) -> bool:
        """True iff at least one component is strictly positive."""
        return self.cores > epsilon or self.memory_mb > epsilon or self.disk_mb > epsilon

    # --------------------------------------------------------------- derived
    def dominant_fraction_of(self, capacity: "ResourceVector") -> float:
        """Largest per-dimension fraction of ``capacity`` this vector uses.

        This is the *dominant share*: how many copies of this request fit
        in ``capacity`` is ``floor(1 / dominant_fraction)``. Dimensions with
        zero capacity and zero request are ignored; a positive request
        against zero capacity yields ``inf``.
        """
        fractions = []
        for need, cap in zip(self, capacity):
            if need <= 0:
                continue
            if cap <= 0:
                return float("inf")
            fractions.append(need / cap)
        return max(fractions) if fractions else 0.0

    def copies_fitting_in(self, capacity: "ResourceVector") -> int:
        """How many whole copies of this request fit in ``capacity``."""
        frac = self.dominant_fraction_of(capacity)
        if frac == 0.0:
            return 0 if capacity.is_zero() else 10**9  # a zero request "fits" unboundedly
        if frac == float("inf"):
            return 0
        return int(1.0 / frac + 1e-9)

    def __iter__(self) -> Iterator[float]:
        yield self.cores
        yield self.memory_mb
        yield self.disk_mb

    def __str__(self) -> str:
        return f"(cores={self.cores:g}, mem={self.memory_mb:g}MB, disk={self.disk_mb:g}MB)"
