"""The cluster facade: wires API server, control loops, and config.

Experiments construct one :class:`Cluster` and get a fully running
control plane — scheduler binding pods, kubelets pulling images, cloud
controller autoscaling nodes, metrics server scraping. The Work Queue
runtime and HTA attach to it through ``cluster.api`` (objects + watches),
never through private references, mirroring how the real middleware talks
only to the Kubernetes API.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.api import KubeApiServer
from repro.cluster.cloud import (
    CloudController,
    CloudControllerConfig,
    PreemptiblePoolConfig,
)
from repro.cluster.images import ContainerImage, ImageRegistry
from repro.cluster.kubelet import Kubelet, KubeletManager
from repro.cluster.metrics_server import MetricsServer
from repro.cluster.node import MachineType, N1_STANDARD_4
from repro.cluster.pod import Pod
from repro.cluster.scheduler import KubeScheduler
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.tracing import MetricRecorder
from repro.telemetry.events import NULL_TRACER, Tracer
from repro.telemetry.metrics import MetricsRegistry


@dataclass(frozen=True, slots=True)
class ClusterConfig:
    """Everything needed to stand up a simulated GKE-like cluster."""

    machine_type: MachineType = N1_STANDARD_4
    min_nodes: int = 3
    max_nodes: int = 20
    node_reservation_mean_s: float = 149.0
    node_reservation_std_s: float = 4.0
    node_idle_timeout_s: float = 600.0
    autoscaler_scan_period_s: float = 10.0
    max_concurrent_reservations: int | None = None
    node_boot_failure_prob: float = 0.0
    scheduler_sync_period_s: float = 1.0
    scheduler_strategy: str = "least-requested"
    registry_pull_bandwidth_mbps: float = 100.0
    registry_fixed_overhead_s: float = 2.0
    registry_jitter_cv: float = 0.02
    metrics_sample_period_s: float = 15.0
    metrics_window_s: float = 60.0
    #: Optional spot/preemptible node pool next to the on-demand pool.
    preemptible: Optional[PreemptiblePoolConfig] = None

    def cloud_config(self) -> CloudControllerConfig:
        return CloudControllerConfig(
            machine_type=self.machine_type,
            min_nodes=self.min_nodes,
            max_nodes=self.max_nodes,
            scan_period_s=self.autoscaler_scan_period_s,
            reservation_mean_s=self.node_reservation_mean_s,
            reservation_std_s=self.node_reservation_std_s,
            idle_timeout_s=self.node_idle_timeout_s,
            max_concurrent_reservations=self.max_concurrent_reservations,
            boot_failure_prob=self.node_boot_failure_prob,
            preemptible=self.preemptible,
        )


class Cluster:
    """A running simulated cluster: API server plus all control loops."""

    def __init__(
        self,
        engine: Engine,
        rng: RngRegistry,
        config: ClusterConfig = ClusterConfig(),
        recorder: Optional[MetricRecorder] = None,
        *,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.engine = engine
        self.rng = rng
        self.config = config
        self.recorder = recorder if recorder is not None else MetricRecorder(engine)
        #: One tracer shared by every control loop in this cluster.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.api = KubeApiServer(engine, tracer=self.tracer, metrics=metrics)
        self.registry = ImageRegistry(
            rng,
            pull_bandwidth_mbps=config.registry_pull_bandwidth_mbps,
            fixed_overhead_s=config.registry_fixed_overhead_s,
            jitter_cv=config.registry_jitter_cv,
        )
        self.kubelets = KubeletManager(
            engine, self.api, self.registry, tracer=self.tracer
        )
        self.scheduler = KubeScheduler(
            engine,
            self.api,
            sync_period=config.scheduler_sync_period_s,
            strategy=config.scheduler_strategy,
            tracer=self.tracer,
        )
        self.cloud = CloudController(
            engine, self.api, rng, config.cloud_config(), tracer=self.tracer
        )
        self.metrics = MetricsServer(
            engine,
            self.api,
            sample_period=config.metrics_sample_period_s,
            window=config.metrics_window_s,
        )

    # ----------------------------------------------------------- lifecycle
    def stop(self) -> None:
        """Stop all control loops (lets an engine run drain to completion)."""
        self.scheduler.stop()
        self.cloud.stop()
        self.metrics.stop()

    # -------------------------------------------------------------- helpers
    def kubelet_for(self, pod: Pod) -> Kubelet:
        kubelet = self.kubelets.for_pod(pod)
        if kubelet is None:
            raise RuntimeError(f"pod {pod.name} has no node/kubelet")
        return kubelet

    def total_ready_cores(self) -> float:
        return sum(n.capacity.cores for n in self.api.ready_nodes())

    def node_count(self) -> int:
        return len(self.api.ready_nodes())

    def spot_node_count(self) -> int:
        return len([n for n in self.api.ready_nodes() if n.preemptible])

    def describe(self) -> dict:
        """Diagnostic snapshot used by experiment logs."""
        return {
            "time": self.engine.now,
            "nodes": self.node_count(),
            "pending_pods": len(self.api.pending_pods()),
            "pods": len(self.api.pods()),
            "api_writes": self.api.writes,
        }
