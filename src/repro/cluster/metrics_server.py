"""Metrics server: windowed per-pod CPU usage, as HPA consumes it.

Kubernetes' metrics-server scrapes kubelets every ``sample_period``
seconds and reports a short sliding-window average per pod. HPA then
computes *utilization* = usage / request, averaged across the pods behind
the scaled object. We reproduce that pipeline: instantaneous usage comes
from each pod's attached ``cpu_usage_fn`` (set by the Work Queue worker),
and consumers read :meth:`pod_usage` / :meth:`average_utilization`.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, Optional, Tuple

from repro.cluster.api import KubeApiServer
from repro.cluster.pod import Pod, PodPhase
from repro.sim.engine import Engine, PeriodicTask


class MetricsServer:
    """Scrapes running pods on a fixed cadence; serves window averages."""

    def __init__(
        self,
        engine: Engine,
        api: KubeApiServer,
        *,
        sample_period: float = 15.0,
        window: float = 60.0,
    ) -> None:
        if sample_period <= 0 or window < sample_period:
            raise ValueError(
                f"need 0 < sample_period <= window, got {sample_period}, {window}"
            )
        self.engine = engine
        self.api = api
        self.sample_period = sample_period
        self.window = window
        self._samples: Dict[str, Deque[Tuple[float, float]]] = {}
        self.scrapes = 0
        self._loop = PeriodicTask(engine, sample_period, self.scrape, start_after=0.0)

    def stop(self) -> None:
        self._loop.stop()

    # --------------------------------------------------------------- scrape
    def scrape(self) -> None:
        self.scrapes += 1
        now = self.engine.now
        live = set()
        for pod in self.api.pods():
            if pod.phase is not PodPhase.RUNNING:
                continue
            live.add(pod.name)
            q = self._samples.setdefault(pod.name, deque())
            q.append((now, pod.current_cpu_usage()))
            cutoff = now - self.window
            while q and q[0][0] < cutoff:
                q.popleft()
        # Forget pods no longer running so usage doesn't linger after exit.
        for name in list(self._samples):
            if name not in live:
                del self._samples[name]

    # ---------------------------------------------------------------- reads
    def pod_usage(self, pod: Pod) -> Optional[float]:
        """Window-averaged CPU usage (cores), or None if never scraped."""
        q = self._samples.get(pod.name)
        if not q:
            return None
        return sum(v for _, v in q) / len(q)

    def average_utilization(self, pods: Iterable[Pod]) -> Optional[float]:
        """HPA's metric: total windowed usage / total CPU request (0..1+).

        Pods without samples yet are excluded (matching HPA's treatment of
        not-yet-ready pods). Returns None when no pod has samples or the
        request total is zero.
        """
        usage = 0.0
        request = 0.0
        counted = 0
        for pod in pods:
            u = self.pod_usage(pod)
            if u is None:
                continue
            usage += u
            request += pod.spec.request.cores
            counted += 1
        if counted == 0 or request <= 0:
            return None
        return usage / request
