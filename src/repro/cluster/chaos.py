"""Failure injection: node crashes, pod evictions, provisioning faults.

Pods are "disposable object[s] which might fail or restart" (§II-C);
this module makes that concrete for tests and robustness experiments.
A node crash takes every pod on it down with it — worker pods lose their
tasks back to the master's queue, a StatefulSet-wrapped master pod gets
a sticky replacement — and the cloud controller heals the pool. Beyond
pod/node chaos, the injector can open bounded *provisioning fault*
windows: node boot failures (reserved VMs that never join) and image-pull
stalls (a degraded registry multiplying pull times).

All scheduling of failures draws from a named RNG stream, so chaos runs
replay deterministically.
"""

from __future__ import annotations

from typing import Callable, List, Optional, TYPE_CHECKING

from repro.cluster.api import KubeApiServer
from repro.cluster.node import Node
from repro.cluster.pod import Pod
from repro.sim.engine import Engine, PeriodicTask
from repro.sim.rng import RngRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cloud import CloudController
    from repro.cluster.images import ImageRegistry
    from repro.wq.master import Master


class ChaosInjector:
    """Kills nodes/pods on demand or on a seeded random schedule."""

    def __init__(
        self,
        engine: Engine,
        api: KubeApiServer,
        rng: RngRegistry,
        *,
        cloud: Optional["CloudController"] = None,
        registry: Optional["ImageRegistry"] = None,
    ) -> None:
        self.engine = engine
        self.api = api
        self.rng = rng
        #: Optional handles for provisioning-fault injection; chaos that
        #: needs them raises if they were not provided.
        self.cloud = cloud
        self.registry = registry
        self.nodes_killed = 0
        self.pods_killed = 0
        self.boot_failure_windows = 0
        self.pull_stall_windows = 0
        self.master_crashes = 0
        self.api_outage_windows = 0
        self.watch_drop_windows = 0
        self._schedules: List[PeriodicTask] = []

    # ------------------------------------------------------------- directed
    def kill_node(self, node: Node) -> List[Pod]:
        """Crash a node: every pod on it fails, then the node vanishes."""
        victims = list(node.active_pods())
        node.ready = False
        node.deleted = True
        for pod in victims:
            self.api.try_delete("Pod", pod.name)
        self.api.try_delete("Node", node.name)
        self.nodes_killed += 1
        self.pods_killed += len(victims)
        return victims

    def kill_node_named(self, name: str) -> List[Pod]:
        node = self.api.try_get("Node", name)
        if not isinstance(node, Node):
            raise KeyError(f"no such node {name!r}")
        return self.kill_node(node)

    def kill_random_node(self) -> Optional[Node]:
        nodes = self.api.ready_nodes()
        if not nodes:
            return None
        idx = int(self.rng.stream("chaos.node").integers(0, len(nodes)))
        node = nodes[idx]
        self.kill_node(node)
        return node

    def evict_pod(self, pod: Pod) -> None:
        """Delete one pod (voluntary disruption / preemption)."""
        self.api.try_delete("Pod", pod.name)
        self.pods_killed += 1

    def evict_random_pod(self, selector: Optional[dict] = None) -> Optional[Pod]:
        pods = [p for p in self.api.pods(selector) if not p.phase.terminal]
        if not pods:
            return None
        idx = int(self.rng.stream("chaos.pod").integers(0, len(pods)))
        pod = pods[idx]
        self.evict_pod(pod)
        return pod

    # ------------------------------------------------ control-plane faults
    def crash_master(
        self, master: "Master", *, restart_delay_s: Optional[float] = 60.0
    ) -> None:
        """Kill the Work Queue master process mid-run; its replacement
        pod comes up ``restart_delay_s`` later and recovers (from the
        journal, or cold — the master's ``replay_journal`` decides)."""
        self.master_crashes += 1
        master.crash(restart_delay_s=restart_delay_s)

    def schedule_master_crash(
        self, master: "Master", *, at_s: float, restart_delay_s: Optional[float] = 60.0
    ) -> None:
        self.engine.call_at(
            at_s, lambda: self.crash_master(master, restart_delay_s=restart_delay_s)
        )

    def begin_api_outage(self, *, duration_s: Optional[float] = None) -> None:
        """Take the API server's notification plane down; with
        ``duration_s`` the outage ends itself."""
        self.api.begin_outage()
        self.api_outage_windows += 1
        if duration_s is not None:
            self.engine.call_in(duration_s, self.end_api_outage)

    def end_api_outage(self) -> None:
        self.api.end_outage()

    def schedule_api_outage(self, *, at_s: float, duration_s: float) -> None:
        self.engine.call_at(
            at_s, lambda: self.begin_api_outage(duration_s=duration_s)
        )

    def begin_watch_drop(
        self, kind: str = "Pod", *, duration_s: Optional[float] = None
    ) -> None:
        """Silently break one kind's watch streams (events vanish, no
        error — the informer only notices via staleness/resync)."""
        self.api.begin_watch_drop(kind)
        self.watch_drop_windows += 1
        if duration_s is not None:
            self.engine.call_in(duration_s, self.end_watch_drop, kind)

    def end_watch_drop(self, kind: Optional[str] = None) -> None:
        self.api.end_watch_drop(kind)

    def schedule_watch_drop(
        self, *, at_s: float, duration_s: float, kind: str = "Pod"
    ) -> None:
        self.engine.call_at(
            at_s, lambda: self.begin_watch_drop(kind, duration_s=duration_s)
        )

    # ------------------------------------------------- provisioning faults
    def begin_boot_failures(
        self, prob: float, *, duration_s: Optional[float] = None
    ) -> None:
        """Make a fraction of node reservations fail to boot; with
        ``duration_s`` the window closes itself."""
        if self.cloud is None:
            raise RuntimeError("ChaosInjector needs a cloud= handle for boot faults")
        if not 0.0 <= prob <= 1.0:
            raise ValueError(f"prob must be in [0,1], got {prob}")
        self.cloud.boot_failure_prob = prob
        self.boot_failure_windows += 1
        if duration_s is not None:
            self.engine.call_in(duration_s, self.end_boot_failures)

    def end_boot_failures(self) -> None:
        if self.cloud is not None:
            self.cloud.boot_failure_prob = self.cloud.config.boot_failure_prob

    def begin_image_pull_stall(
        self, factor: float, *, duration_s: Optional[float] = None
    ) -> None:
        """Multiply image-pull durations by ``factor`` (degraded
        registry); with ``duration_s`` the stall clears itself."""
        if self.registry is None:
            raise RuntimeError(
                "ChaosInjector needs a registry= handle for pull stalls"
            )
        if factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {factor}")
        self.registry.stall_factor = factor
        self.pull_stall_windows += 1
        if duration_s is not None:
            self.engine.call_in(duration_s, self.end_image_pull_stall)

    def end_image_pull_stall(self) -> None:
        if self.registry is not None:
            self.registry.stall_factor = 1.0

    # ------------------------------------------------------------ scheduled
    def schedule_node_failures(
        self,
        mean_interval_s: float,
        *,
        start_after: Optional[float] = None,
        predicate: Optional[Callable[[Node], bool]] = None,
    ) -> PeriodicTask:
        """Crash a random (predicate-matching) node roughly every
        ``mean_interval_s`` seconds (exponential gaps, seeded)."""
        if mean_interval_s <= 0:
            raise ValueError("mean_interval_s must be positive")

        def strike() -> float:
            nodes = [
                n
                for n in self.api.ready_nodes()
                if predicate is None or predicate(n)
            ]
            if nodes:
                idx = int(self.rng.stream("chaos.node").integers(0, len(nodes)))
                self.kill_node(nodes[idx])
            gap = float(
                self.rng.stream("chaos.schedule").exponential(mean_interval_s)
            )
            return max(1.0, gap)

        first = (
            start_after
            if start_after is not None
            else max(1.0, float(self.rng.stream("chaos.schedule").exponential(mean_interval_s)))
        )
        task = PeriodicTask(
            self.engine, mean_interval_s, strike, start_after=first, use_return_delay=True
        )
        self._schedules.append(task)
        return task

    def schedule_pod_evictions(
        self,
        mean_interval_s: float,
        *,
        start_after: Optional[float] = None,
        selector: Optional[dict] = None,
    ) -> PeriodicTask:
        """Evict a random (selector-matching) pod roughly every
        ``mean_interval_s`` seconds (exponential gaps, seeded) — the
        pod-level mirror of :meth:`schedule_node_failures`."""
        if mean_interval_s <= 0:
            raise ValueError("mean_interval_s must be positive")

        def strike() -> float:
            self.evict_random_pod(selector)
            gap = float(
                self.rng.stream("chaos.pod.schedule").exponential(mean_interval_s)
            )
            return max(1.0, gap)

        first = (
            start_after
            if start_after is not None
            else max(
                1.0,
                float(
                    self.rng.stream("chaos.pod.schedule").exponential(mean_interval_s)
                ),
            )
        )
        task = PeriodicTask(
            self.engine, mean_interval_s, strike, start_after=first, use_return_delay=True
        )
        self._schedules.append(task)
        return task

    def stop(self) -> None:
        for task in self._schedules:
            task.stop()
        self._schedules.clear()
