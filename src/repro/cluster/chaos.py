"""Failure injection: node crashes and pod evictions.

Pods are "disposable object[s] which might fail or restart" (§II-C);
this module makes that concrete for tests and robustness experiments.
A node crash takes every pod on it down with it — worker pods lose their
tasks back to the master's queue, a StatefulSet-wrapped master pod gets
a sticky replacement — and the cloud controller heals the pool.

All scheduling of failures draws from a named RNG stream, so chaos runs
replay deterministically.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.cluster.api import KubeApiServer
from repro.cluster.node import Node
from repro.cluster.pod import Pod
from repro.sim.engine import Engine, PeriodicTask
from repro.sim.rng import RngRegistry


class ChaosInjector:
    """Kills nodes/pods on demand or on a seeded random schedule."""

    def __init__(self, engine: Engine, api: KubeApiServer, rng: RngRegistry) -> None:
        self.engine = engine
        self.api = api
        self.rng = rng
        self.nodes_killed = 0
        self.pods_killed = 0
        self._schedules: List[PeriodicTask] = []

    # ------------------------------------------------------------- directed
    def kill_node(self, node: Node) -> List[Pod]:
        """Crash a node: every pod on it fails, then the node vanishes."""
        victims = list(node.active_pods())
        node.ready = False
        node.deleted = True
        for pod in victims:
            self.api.try_delete("Pod", pod.name)
        self.api.try_delete("Node", node.name)
        self.nodes_killed += 1
        return victims

    def kill_node_named(self, name: str) -> List[Pod]:
        node = self.api.try_get("Node", name)
        if not isinstance(node, Node):
            raise KeyError(f"no such node {name!r}")
        return self.kill_node(node)

    def kill_random_node(self) -> Optional[Node]:
        nodes = self.api.ready_nodes()
        if not nodes:
            return None
        idx = int(self.rng.stream("chaos.node").integers(0, len(nodes)))
        node = nodes[idx]
        self.kill_node(node)
        return node

    def evict_pod(self, pod: Pod) -> None:
        """Delete one pod (voluntary disruption / preemption)."""
        self.api.try_delete("Pod", pod.name)
        self.pods_killed += 1

    def evict_random_pod(self, selector: Optional[dict] = None) -> Optional[Pod]:
        pods = [p for p in self.api.pods(selector) if not p.phase.terminal]
        if not pods:
            return None
        idx = int(self.rng.stream("chaos.pod").integers(0, len(pods)))
        pod = pods[idx]
        self.evict_pod(pod)
        return pod

    # ------------------------------------------------------------ scheduled
    def schedule_node_failures(
        self,
        mean_interval_s: float,
        *,
        start_after: Optional[float] = None,
        predicate: Optional[Callable[[Node], bool]] = None,
    ) -> PeriodicTask:
        """Crash a random (predicate-matching) node roughly every
        ``mean_interval_s`` seconds (exponential gaps, seeded)."""
        if mean_interval_s <= 0:
            raise ValueError("mean_interval_s must be positive")

        def strike() -> float:
            nodes = [
                n
                for n in self.api.ready_nodes()
                if predicate is None or predicate(n)
            ]
            if nodes:
                idx = int(self.rng.stream("chaos.node").integers(0, len(nodes)))
                self.kill_node(nodes[idx])
            gap = float(
                self.rng.stream("chaos.schedule").exponential(mean_interval_s)
            )
            return max(1.0, gap)

        first = (
            start_after
            if start_after is not None
            else max(1.0, float(self.rng.stream("chaos.schedule").exponential(mean_interval_s)))
        )
        task = PeriodicTask(
            self.engine, mean_interval_s, strike, start_after=first, use_return_delay=True
        )
        self._schedules.append(task)
        return task

    def stop(self) -> None:
        for task in self._schedules:
            task.stop()
        self._schedules.clear()
