"""Failure injection: node crashes, pod evictions, provisioning faults.

Pods are "disposable object[s] which might fail or restart" (§II-C);
this module makes that concrete for tests and robustness experiments.
A node crash takes every pod on it down with it — worker pods lose their
tasks back to the master's queue, a StatefulSet-wrapped master pod gets
a sticky replacement — and the cloud controller heals the pool. Beyond
pod/node chaos, the injector can open bounded *provisioning fault*
windows: node boot failures (reserved VMs that never join) and image-pull
stalls (a degraded registry multiplying pull times).

All scheduling of failures draws from a named RNG stream, so chaos runs
replay deterministically.
"""

from __future__ import annotations

from typing import Callable, List, Optional, TYPE_CHECKING

from repro.cluster.api import KubeApiServer
from repro.cluster.node import Node
from repro.cluster.pod import Pod
from repro.sim.engine import Engine, PeriodicTask
from repro.sim.rng import RngRegistry
from repro.telemetry.events import NULL_TRACER, Tracer
from repro.telemetry.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cloud import CloudController
    from repro.cluster.images import ImageRegistry
    from repro.wq.master import Master


class ChaosInjector:
    """Kills nodes/pods on demand or on a seeded random schedule."""

    def __init__(
        self,
        engine: Engine,
        api: KubeApiServer,
        rng: RngRegistry,
        *,
        cloud: Optional["CloudController"] = None,
        registry: Optional["ImageRegistry"] = None,
        tracer: Optional["Tracer"] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.engine = engine
        self.api = api
        self.rng = rng
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Optional handles for provisioning-fault injection; chaos that
        #: needs them raises if they were not provided.
        self.cloud = cloud
        self.registry = registry
        #: Injection counters live in a metrics registry (shared with the
        #: run when one is passed); the properties below preserve the
        #: historical ``chaos.pods_killed``-style attribute API.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._c_injections = self.metrics.counter(
            "chaos_injections_total", "fault injections by kind"
        )
        self._schedules: List[PeriodicTask] = []

    @property
    def nodes_killed(self) -> int:
        return int(self._c_injections.value(kind="node_kill"))

    @property
    def pods_killed(self) -> int:
        return int(self._c_injections.value(kind="pod_evict"))

    @property
    def boot_failure_windows(self) -> int:
        return int(self._c_injections.value(kind="boot_failures"))

    @property
    def pull_stall_windows(self) -> int:
        return int(self._c_injections.value(kind="pull_stall"))

    @property
    def master_crashes(self) -> int:
        return int(self._c_injections.value(kind="master_crash"))

    @property
    def api_outage_windows(self) -> int:
        return int(self._c_injections.value(kind="api_outage"))

    @property
    def watch_drop_windows(self) -> int:
        return int(self._c_injections.value(kind="watch_drop"))

    @property
    def preemptions_total(self) -> int:
        """Spot-node reclamations fired (distinct from ``pod_evict`` —
        a preemption is a provider reclaim with a grace notice)."""
        return int(self._c_injections.value(kind="preemption"))

    @property
    def partition_windows(self) -> int:
        return int(self._c_injections.value(kind="partition"))

    @property
    def migrations_injected(self) -> int:
        """Checkpoint/restore drains fired against live workers."""
        return int(self._c_injections.value(kind="migrate"))

    @property
    def corruptions_injected(self) -> int:
        """Silent result corruptions planted on running attempts."""
        return int(self._c_injections.value(kind="corrupt"))

    @property
    def black_holes_injected(self) -> int:
        """Workers turned into black holes (fast-fail / fast-fake)."""
        return int(self._c_injections.value(kind="black_hole"))

    @property
    def shard_crashes(self) -> int:
        """Single dispatch shards killed behind a foreman."""
        return int(self._c_injections.value(kind="shard_crash"))

    # ------------------------------------------------------------- directed
    def kill_node(self, node: Node) -> List[Pod]:
        """Crash a node: every pod on it fails, then the node vanishes."""
        victims = list(node.active_pods())
        node.ready = False
        node.deleted = True
        for pod in victims:
            self.api.try_delete("Pod", pod.name)
        self.api.try_delete("Node", node.name)
        self._c_injections.inc(kind="node_kill")
        if victims:
            self._c_injections.inc(len(victims), kind="pod_evict")
        self.tracer.emit(
            "cluster", "chaos.node_kill", "chaos",
            node=node.name, pods_lost=len(victims),
        )
        return victims

    def kill_node_named(self, name: str) -> List[Pod]:
        node = self.api.try_get("Node", name)
        if not isinstance(node, Node):
            raise KeyError(f"no such node {name!r}")
        return self.kill_node(node)

    def kill_random_node(self) -> Optional[Node]:
        nodes = self.api.ready_nodes()
        if not nodes:
            return None
        idx = int(self.rng.stream("chaos.node").integers(0, len(nodes)))
        node = nodes[idx]
        self.kill_node(node)
        return node

    def evict_pod(self, pod: Pod) -> None:
        """Delete one pod (voluntary disruption / preemption)."""
        self.api.try_delete("Pod", pod.name)
        self._c_injections.inc(kind="pod_evict")
        self.tracer.emit("cluster", "chaos.pod_evict", "chaos", pod=pod.name)

    def evict_random_pod(self, selector: Optional[dict] = None) -> Optional[Pod]:
        pods = [p for p in self.api.pods(selector) if not p.phase.terminal]
        if not pods:
            return None
        idx = int(self.rng.stream("chaos.pod").integers(0, len(pods)))
        pod = pods[idx]
        self.evict_pod(pod)
        return pod

    # ------------------------------------------------------- spot preemption
    def preempt_node(self, node: Node) -> bool:
        """Fire a provider reclamation notice for one spot node (the
        cloud controller owns the grace window and the eventual kill)."""
        if self.cloud is None:
            raise RuntimeError("ChaosInjector needs a cloud= handle for preemptions")
        if not self.cloud.begin_preemption(node):
            return False
        self._c_injections.inc(kind="preemption")
        self.tracer.emit("cluster", "chaos.preemption", "chaos", node=node.name)
        return True

    def preempt_random_spot_nodes(self, count: int = 1) -> int:
        """Reclaim up to ``count`` random live spot nodes (seeded draw)."""
        if self.cloud is None:
            raise RuntimeError("ChaosInjector needs a cloud= handle for preemptions")
        preempted = 0
        for _ in range(count):
            candidates = self.cloud.preemptable_spot_nodes()
            if not candidates:
                break
            idx = int(
                self.rng.stream("chaos.preempt").integers(0, len(candidates))
            )
            if self.preempt_node(candidates[idx]):
                preempted += 1
        return preempted

    def schedule_preemption_wave(self, *, at_s: float, count: int = 1) -> None:
        """At ``at_s``, reclaim up to ``count`` spot nodes at once — the
        correlated capacity loss real spot pools exhibit when the
        provider needs machines back."""
        self.engine.call_at(at_s, self.preempt_random_spot_nodes, count)

    # --------------------------------------------------- live-drain migration
    def migrate_random_worker(self, master: "Master", coordinator):
        """Drain a random busy, reachable worker through the
        checkpoint/restore migration protocol (its runs snapshot, ship,
        and resume elsewhere with banked progress). Returns the worker
        struck, or ``None`` if nothing was eligible."""
        candidates = [
            w
            for w in master.connected_workers()
            if w.runs
            and not w.partitioned
            and w.state.value in ("ready", "draining")
        ]
        if not candidates:
            return None
        idx = int(self.rng.stream("chaos.migrate").integers(0, len(candidates)))
        worker = candidates[idx]
        started = coordinator.drain_worker(worker, reason="chaos")
        self._c_injections.inc(kind="migrate")
        self.tracer.emit(
            "cluster", "chaos.migrate", "chaos",
            worker=worker.name, migrations=started,
        )
        return worker

    # ------------------------------------------------------- value faults
    def corrupt_random_result(self, master: "Master"):
        """Silently corrupt the in-flight result of one random running
        attempt: the task keeps executing, but the payload it will
        deliver is damaged — only the master's content-digest check (if
        verification is on) stands between it and COMPLETE. Returns the
        task struck, or ``None`` if nothing was running."""
        candidates = [
            t for t in master.running_tasks() if not t.payload_corrupt
        ]
        if not candidates:
            return None
        idx = int(self.rng.stream("chaos.corrupt").integers(0, len(candidates)))
        task = candidates[idx]
        task.payload_corrupt = True
        self._c_injections.inc(kind="corrupt")
        self.tracer.emit(
            "cluster", "chaos.corrupt", "chaos",
            task_id=task.id, task_category=task.category,
        )
        return task

    def black_hole_random_worker(self, master: "Master", profile=None):
        """Turn one random healthy connected worker into a black hole:
        every task it starts from now on resolves in seconds, as a
        failure or a fake completion per ``profile`` (default
        fast-fail). Returns the worker struck, or ``None``."""
        if profile is None:
            from repro.wq.faults import BlackHoleProfile

            profile = BlackHoleProfile()
        candidates = [
            w
            for w in master.connected_workers()
            if w.black_hole is None
            and not w.quarantined
            and w.state.value in ("ready", "draining")
        ]
        if not candidates:
            return None
        idx = int(self.rng.stream("chaos.blackhole").integers(0, len(candidates)))
        worker = candidates[idx]
        worker.black_hole = profile
        self._c_injections.inc(kind="black_hole")
        self.tracer.emit(
            "cluster", "chaos.black_hole", "chaos",
            worker=worker.name, mode=profile.mode,
        )
        return worker

    def schedule_black_holes(
        self, master: "Master", *, at_s: float, count: int = 1, profile=None
    ) -> None:
        """At ``at_s``, turn up to ``count`` workers into black holes at
        once — the correlated sick-rack storm the health ledger exists
        to survive."""

        def strike() -> None:
            for _ in range(count):
                if self.black_hole_random_worker(master, profile) is None:
                    break

        self.engine.call_at(at_s, strike)

    # ---------------------------------------------------- network partitions
    def begin_partition(
        self,
        master: "Master",
        worker,
        *,
        duration_s: Optional[float] = None,
    ) -> None:
        """Cut the network path between one worker and the master. The
        worker keeps executing (holding finished results); the master
        starts its liveness clock. With ``duration_s`` the link heals
        itself — the worker then rejoins at its next reconnect poll."""
        self._c_injections.inc(kind="partition")
        self.tracer.emit(
            "cluster", "chaos.partition", "chaos",
            worker=worker.name, duration_s=duration_s,
        )
        worker.partition()
        master.worker_unreachable(worker)
        if duration_s is not None:
            self.engine.call_in(duration_s, self.end_partition, worker)

    def end_partition(self, worker) -> None:
        worker.heal()

    def partition_random_worker(
        self, master: "Master", *, duration_s: Optional[float] = None
    ):
        """Partition a random connected worker; returns it (or None)."""
        candidates = [
            w
            for w in master.connected_workers()
            if not w.partitioned
            and w.state.value in ("ready", "draining")
        ]
        if not candidates:
            return None
        idx = int(self.rng.stream("chaos.partition").integers(0, len(candidates)))
        worker = candidates[idx]
        self.begin_partition(master, worker, duration_s=duration_s)
        return worker

    def schedule_partition(
        self,
        master: "Master",
        *,
        at_s: float,
        duration_s: float,
        worker_name: Optional[str] = None,
    ) -> None:
        """At ``at_s``, partition one worker (``worker_name`` or a seeded
        random pick among those connected) for ``duration_s``."""

        def strike() -> None:
            if worker_name is not None:
                worker = master.workers.get(worker_name)
                if worker is not None and not worker.partitioned:
                    self.begin_partition(master, worker, duration_s=duration_s)
                return
            self.partition_random_worker(master, duration_s=duration_s)

        self.engine.call_at(at_s, strike)

    def schedule_partitions(
        self,
        master: "Master",
        mean_interval_s: float,
        *,
        duration_s: float = 45.0,
        start_after: Optional[float] = None,
    ) -> PeriodicTask:
        """Partition a random worker roughly every ``mean_interval_s``
        seconds (exponential gaps, seeded), healing each after
        ``duration_s``."""
        if mean_interval_s <= 0:
            raise ValueError("mean_interval_s must be positive")

        def strike() -> float:
            self.partition_random_worker(master, duration_s=duration_s)
            gap = float(
                self.rng.stream("chaos.partition.schedule").exponential(
                    mean_interval_s
                )
            )
            return max(1.0, gap)

        first = (
            start_after
            if start_after is not None
            else max(
                1.0,
                float(
                    self.rng.stream("chaos.partition.schedule").exponential(
                        mean_interval_s
                    )
                ),
            )
        )
        task = PeriodicTask(
            self.engine, mean_interval_s, strike, start_after=first, use_return_delay=True
        )
        self._schedules.append(task)
        return task

    # ------------------------------------------------ control-plane faults
    def crash_master(
        self, master: "Master", *, restart_delay_s: Optional[float] = 60.0
    ) -> None:
        """Kill the Work Queue master process mid-run; its replacement
        pod comes up ``restart_delay_s`` later and recovers (from the
        journal, or cold — the master's ``replay_journal`` decides)."""
        self._c_injections.inc(kind="master_crash")
        self.tracer.emit(
            "cluster", "chaos.master_crash", "chaos",
            restart_delay_s=restart_delay_s,
        )
        master.crash(restart_delay_s=restart_delay_s)

    def schedule_master_crash(
        self, master: "Master", *, at_s: float, restart_delay_s: Optional[float] = 60.0
    ) -> None:
        self.engine.call_at(
            at_s, lambda: self.crash_master(master, restart_delay_s=restart_delay_s)
        )

    def crash_shard(
        self, foreman, i: int, *, restart_delay_s: Optional[float] = None
    ) -> None:
        """Kill one dispatch shard behind the foreman. With
        ``restart_delay_s`` the shard's replacement pod comes back (the
        transient case the failover grace must tolerate); without it
        the shard is permanently lost and only the failover coordinator
        can un-strand its work."""
        self._c_injections.inc(kind="shard_crash")
        self.tracer.emit(
            "cluster", "chaos.shard_crash", "chaos",
            shard=i, restart_delay_s=restart_delay_s,
        )
        foreman.crash_shard(i, restart_delay_s=restart_delay_s)

    def crash_random_shard(
        self, foreman, *, restart_delay_s: Optional[float] = None
    ) -> Optional[int]:
        """Crash a seeded-random live shard; returns its index, or None
        when every shard is already down (nothing left to kill)."""
        candidates = [
            i for i, s in enumerate(foreman.shards) if not s.crashed
        ]
        if not candidates:
            return None
        idx = candidates[
            int(self.rng.stream("chaos.shard").integers(0, len(candidates)))
        ]
        self.crash_shard(foreman, idx, restart_delay_s=restart_delay_s)
        return idx

    def begin_api_outage(self, *, duration_s: Optional[float] = None) -> None:
        """Take the API server's notification plane down; with
        ``duration_s`` the outage ends itself."""
        self.api.begin_outage()
        self._c_injections.inc(kind="api_outage")
        if duration_s is not None:
            self.engine.call_in(duration_s, self.end_api_outage)

    def end_api_outage(self) -> None:
        self.api.end_outage()

    def schedule_api_outage(self, *, at_s: float, duration_s: float) -> None:
        self.engine.call_at(
            at_s, lambda: self.begin_api_outage(duration_s=duration_s)
        )

    def begin_watch_drop(
        self, kind: str = "Pod", *, duration_s: Optional[float] = None
    ) -> None:
        """Silently break one kind's watch streams (events vanish, no
        error — the informer only notices via staleness/resync)."""
        self.api.begin_watch_drop(kind)
        self._c_injections.inc(kind="watch_drop")
        if duration_s is not None:
            self.engine.call_in(duration_s, self.end_watch_drop, kind)

    def end_watch_drop(self, kind: Optional[str] = None) -> None:
        self.api.end_watch_drop(kind)

    def schedule_watch_drop(
        self, *, at_s: float, duration_s: float, kind: str = "Pod"
    ) -> None:
        self.engine.call_at(
            at_s, lambda: self.begin_watch_drop(kind, duration_s=duration_s)
        )

    # ------------------------------------------------- provisioning faults
    def begin_boot_failures(
        self, prob: float, *, duration_s: Optional[float] = None
    ) -> None:
        """Make a fraction of node reservations fail to boot; with
        ``duration_s`` the window closes itself."""
        if self.cloud is None:
            raise RuntimeError("ChaosInjector needs a cloud= handle for boot faults")
        if not 0.0 <= prob <= 1.0:
            raise ValueError(f"prob must be in [0,1], got {prob}")
        self.cloud.boot_failure_prob = prob
        self._c_injections.inc(kind="boot_failures")
        self.tracer.emit(
            "cluster", "chaos.boot_failures.begin", "chaos", prob=prob
        )
        if duration_s is not None:
            self.engine.call_in(duration_s, self.end_boot_failures)

    def end_boot_failures(self) -> None:
        if self.cloud is not None:
            self.cloud.boot_failure_prob = self.cloud.config.boot_failure_prob

    def begin_image_pull_stall(
        self, factor: float, *, duration_s: Optional[float] = None
    ) -> None:
        """Multiply image-pull durations by ``factor`` (degraded
        registry); with ``duration_s`` the stall clears itself."""
        if self.registry is None:
            raise RuntimeError(
                "ChaosInjector needs a registry= handle for pull stalls"
            )
        if factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {factor}")
        self.registry.stall_factor = factor
        self._c_injections.inc(kind="pull_stall")
        self.tracer.emit(
            "cluster", "chaos.pull_stall.begin", "chaos", factor=factor
        )
        if duration_s is not None:
            self.engine.call_in(duration_s, self.end_image_pull_stall)

    def end_image_pull_stall(self) -> None:
        if self.registry is not None:
            self.registry.stall_factor = 1.0

    # ------------------------------------------------------------ scheduled
    def schedule_node_failures(
        self,
        mean_interval_s: float,
        *,
        start_after: Optional[float] = None,
        predicate: Optional[Callable[[Node], bool]] = None,
    ) -> PeriodicTask:
        """Crash a random (predicate-matching) node roughly every
        ``mean_interval_s`` seconds (exponential gaps, seeded)."""
        if mean_interval_s <= 0:
            raise ValueError("mean_interval_s must be positive")

        def strike() -> float:
            nodes = [
                n
                for n in self.api.ready_nodes()
                if predicate is None or predicate(n)
            ]
            if nodes:
                idx = int(self.rng.stream("chaos.node").integers(0, len(nodes)))
                self.kill_node(nodes[idx])
            gap = float(
                self.rng.stream("chaos.schedule").exponential(mean_interval_s)
            )
            return max(1.0, gap)

        first = (
            start_after
            if start_after is not None
            else max(1.0, float(self.rng.stream("chaos.schedule").exponential(mean_interval_s)))
        )
        task = PeriodicTask(
            self.engine, mean_interval_s, strike, start_after=first, use_return_delay=True
        )
        self._schedules.append(task)
        return task

    def schedule_pod_evictions(
        self,
        mean_interval_s: float,
        *,
        start_after: Optional[float] = None,
        selector: Optional[dict] = None,
    ) -> PeriodicTask:
        """Evict a random (selector-matching) pod roughly every
        ``mean_interval_s`` seconds (exponential gaps, seeded) — the
        pod-level mirror of :meth:`schedule_node_failures`."""
        if mean_interval_s <= 0:
            raise ValueError("mean_interval_s must be positive")

        def strike() -> float:
            self.evict_random_pod(selector)
            gap = float(
                self.rng.stream("chaos.pod.schedule").exponential(mean_interval_s)
            )
            return max(1.0, gap)

        first = (
            start_after
            if start_after is not None
            else max(
                1.0,
                float(
                    self.rng.stream("chaos.pod.schedule").exponential(mean_interval_s)
                ),
            )
        )
        task = PeriodicTask(
            self.engine, mean_interval_s, strike, start_after=first, use_return_delay=True
        )
        self._schedules.append(task)
        return task

    def stop(self) -> None:
        for task in self._schedules:
            task.stop()
        self._schedules.clear()
