"""The API server: typed object stores plus watch streams.

Control loops in this package (scheduler, cloud controller, HPA) and in
:mod:`repro.hta` never hold references to each other; they interact the
Kubernetes way — by reading and writing objects through the API server and
subscribing to watch events. This keeps each loop independently testable
and mirrors the real system's architecture (HTA's informer cache is a
client of exactly this watch interface).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple, Type

from repro.cluster.node import Node
from repro.cluster.objects import KubeObject, Service, StatefulSet
from repro.cluster.pod import Pod, PodPhase, REASON_KILLED
from repro.sim.engine import Engine
from repro.telemetry.events import NULL_TRACER, Tracer
from repro.telemetry.metrics import MetricsRegistry


class WatchEventType(enum.Enum):
    ADDED = "ADDED"
    MODIFIED = "MODIFIED"
    DELETED = "DELETED"


@dataclass(frozen=True, slots=True)
class WatchEvent:
    """A change notification delivered to watchers of a kind."""

    type: WatchEventType
    obj: KubeObject
    time: float
    #: The kind's resourceVersion this event advances the watcher to.
    version: int = 0


WatchHandler = Callable[[WatchEvent], None]


class ConflictError(RuntimeError):
    """Create of an object whose name already exists."""


class NotFoundError(KeyError):
    """Get/delete of an object that does not exist."""


class KubeApiServer:
    """Stores objects by kind and name; fans out watch events.

    Watch delivery is *asynchronous* (scheduled ``call_soon``), like real
    watch streams: a handler that mutates objects cannot re-enter another
    handler mid-notification, which keeps control-loop interleavings
    well-defined.
    """

    KINDS: Dict[str, Type[KubeObject]] = {
        "Pod": Pod,
        "Node": Node,
        "Service": Service,
        "StatefulSet": StatefulSet,
    }

    def __init__(
        self,
        engine: Engine,
        *,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.engine = engine
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Registry home for the server's fault counters; a private one
        #: is created when no shared registry is supplied so the
        #: attribute API below works unconditionally.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._c_dropped = self.metrics.counter(
            "api_dropped_watch_events_total",
            "watch events lost to outages or injected stream drops",
        )
        self._c_outages = self.metrics.counter(
            "api_outages_total", "injected API-server outage windows"
        )
        self._stores: Dict[str, Dict[str, KubeObject]] = {k: {} for k in self.KINDS}
        # Memoized unfiltered list() result per kind. The sort key
        # (creation_time, name) is immutable per object, so the order can
        # only change when membership does — create/delete drop the entry.
        self._sorted_cache: Dict[str, List[KubeObject]] = {}
        # Watchers are stored as (position, handler) so deliveries can be
        # merged with the node-keyed pod watchers below in exact
        # registration order (same-instant handler execution order is
        # part of determinism).
        self._watchers: Dict[str, List[Tuple[int, WatchHandler]]] = {
            k: [] for k in self.KINDS
        }
        self._watch_pos = itertools.count()
        #: Node-scoped pod watchers (the kubelets): a pod event is
        #: delivered only to the watcher keyed by the pod's bound node,
        #: instead of fanning out one engine event per kubelet per pod —
        #: the O(pods x nodes) churn that dominated large-fleet runs.
        self._pod_node_watchers: Dict[str, List[Tuple[int, WatchHandler]]] = {}
        self._n_keyed_pod_watchers = 0
        self.writes = 0  # diagnostic: API write volume
        #: Per-kind resourceVersion head, bumped on every notification.
        self._versions: Dict[str, int] = {k: 0 for k in self.KINDS}
        #: False during an injected API-server outage: the notification
        #: plane is cut (watch events are lost) while writes from
        #: co-located controllers still commit to the store — so when
        #: service returns, caches are *behind* the store and must
        #: relist. Defensive clients also check this flag before calls.
        self.available = True
        #: Kinds whose watch streams are currently silently broken.
        self._drop_kinds: Set[str] = set()

    # Fault counters live in the metrics registry; these properties keep
    # the historical attribute API (``api.dropped_events``) intact.
    @property
    def api_outages(self) -> int:
        return int(self._c_outages.total)

    @property
    def dropped_events(self) -> int:
        return int(self._c_dropped.total)

    # ---------------------------------------------------------------- CRUD
    def _store(self, kind: str) -> Dict[str, KubeObject]:
        try:
            return self._stores[kind]
        except KeyError:
            raise KeyError(f"unknown kind {kind!r}; known: {sorted(self._stores)}") from None

    def create(self, obj: KubeObject) -> KubeObject:
        store = self._store(obj.kind)
        if obj.name in store:
            raise ConflictError(f"{obj.kind} {obj.name!r} already exists")
        obj.meta.creation_time = self.engine.now
        store[obj.name] = obj
        self._sorted_cache.pop(obj.kind, None)
        self.writes += 1
        self._notify(WatchEventType.ADDED, obj)
        return obj

    def get(self, kind: str, name: str) -> KubeObject:
        store = self._store(kind)
        try:
            return store[name]
        except KeyError:
            raise NotFoundError(f"{kind} {name!r} not found") from None

    def try_get(self, kind: str, name: str) -> Optional[KubeObject]:
        return self._store(kind).get(name)

    def list(self, kind: str, selector: Optional[Dict[str, str]] = None) -> List[KubeObject]:
        if selector:
            objs: Iterable[KubeObject] = self._store(kind).values()
            objs = (o for o in objs if o.meta.matches(selector))
            return sorted(objs, key=lambda o: (o.meta.creation_time, o.name))
        cached = self._sorted_cache.get(kind)
        if cached is None:
            cached = sorted(
                self._store(kind).values(),
                key=lambda o: (o.meta.creation_time, o.name),
            )
            self._sorted_cache[kind] = cached
        return list(cached)  # callers may filter/mutate their copy

    def mark_modified(self, obj: KubeObject) -> None:
        """Record an in-place status update and notify watchers.

        Objects are mutated directly (pods change phase, nodes turn ready);
        callers announce the change here, mirroring a status PATCH.
        """
        store = self._store(obj.kind)
        if store.get(obj.name) is not obj:
            return  # already deleted; late status updates are dropped
        self.writes += 1
        self._notify(WatchEventType.MODIFIED, obj)

    def delete(self, kind: str, name: str) -> KubeObject:
        store = self._store(kind)
        try:
            obj = store.pop(name)
        except KeyError:
            raise NotFoundError(f"{kind} {name!r} not found") from None
        self._sorted_cache.pop(kind, None)
        self.writes += 1
        if isinstance(obj, Pod):
            self._teardown_pod(obj)
        self._notify(WatchEventType.DELETED, obj)
        return obj

    def try_delete(self, kind: str, name: str) -> Optional[KubeObject]:
        try:
            return self.delete(kind, name)
        except NotFoundError:
            return None

    def _teardown_pod(self, pod: Pod) -> None:
        """Deleting a pod kills its container (the disruptive path the
        paper's pod-per-worker design avoids for scale-down)."""
        pod.deletion_requested = True
        if pod.phase is PodPhase.RUNNING:
            pod.add_event(self.engine.now, REASON_KILLED, "pod deleted")
            if pod.on_stop is not None:
                pod.on_stop(pod)
            pod.mark_finished(self.engine.now, succeeded=False)
        elif not pod.phase.terminal:
            pod.mark_finished(self.engine.now, succeeded=False)
        if pod.node is not None:
            pod.node.unbind(pod)

    # ------------------------------------------------------- fault windows
    def begin_outage(self) -> None:
        """API server down: watch notifications are lost until
        :meth:`end_outage` (resourceVersions still advance — that gap is
        exactly what informers detect as staleness)."""
        if not self.available:
            return
        self.available = False
        self._c_outages.inc()
        self.tracer.emit("cluster", "api.outage.begin", "fault")

    def end_outage(self) -> None:
        if not self.available:
            self.tracer.emit("cluster", "api.outage.end", "fault")
        self.available = True

    def begin_watch_drop(self, kind: str) -> None:
        """Silently break ``kind``'s watch streams: events are dropped
        without any error, the failure mode client-go's relist-and-resync
        exists for."""
        if kind not in self._drop_kinds:
            self.tracer.emit("cluster", "api.watch_drop.begin", "fault", kind=kind)
        self._drop_kinds.add(kind)

    def end_watch_drop(self, kind: Optional[str] = None) -> None:
        ended = list(self._drop_kinds) if kind is None else (
            [kind] if kind in self._drop_kinds else []
        )
        for k in ended:
            self.tracer.emit("cluster", "api.watch_drop.end", "fault", kind=k)
        if kind is None:
            self._drop_kinds.clear()
        else:
            self._drop_kinds.discard(kind)

    def kind_version(self, kind: str) -> int:
        """Current resourceVersion head for ``kind``."""
        try:
            return self._versions[kind]
        except KeyError:
            raise KeyError(f"unknown kind {kind!r}; known: {sorted(self._versions)}") from None

    def watcher_count(self, kind: str) -> int:
        """Registered watch handlers for ``kind`` (leak regression hook)."""
        n = len(self._watchers[kind])
        if kind == "Pod":
            n += self._n_keyed_pod_watchers
        return n

    # --------------------------------------------------------------- watch
    def watch(self, kind: str, handler: WatchHandler, *, replay_existing: bool = True) -> None:
        """Subscribe to changes of ``kind``.

        With ``replay_existing`` (informer semantics) the handler first
        receives ADDED for every object already in the store.
        """
        self._watchers[kind].append((next(self._watch_pos), handler))
        if replay_existing:
            for obj in self.list(kind):
                self.engine.call_soon(
                    handler,
                    WatchEvent(
                        WatchEventType.ADDED,
                        obj,
                        self.engine.now,
                        version=obj.meta.resource_version,
                    ),
                )

    def watch_pods_on_node(
        self, node: Node, handler: WatchHandler, *, replay_existing: bool = True
    ) -> None:
        """Subscribe to pod events scoped to ``node`` (kubelet semantics:
        a fieldSelector on ``spec.nodeName``).

        Delivery (including ordering relative to unscoped pod watchers)
        matches what an unscoped watch whose handler ignored other nodes'
        pods would observe — the API server just skips scheduling the
        no-op deliveries. Replay covers pods currently bound to the node.
        """
        self._pod_node_watchers.setdefault(node.name, []).append(
            (next(self._watch_pos), handler)
        )
        self._n_keyed_pod_watchers += 1
        if replay_existing:
            store = self._store("Pod")
            bound = sorted(
                (p for p in node.pods if store.get(p.name) is p),
                key=lambda o: (o.meta.creation_time, o.name),
            )
            for obj in bound:
                self.engine.call_soon(
                    handler,
                    WatchEvent(
                        WatchEventType.ADDED,
                        obj,
                        self.engine.now,
                        version=obj.meta.resource_version,
                    ),
                )

    def unwatch(self, kind: str, handler: WatchHandler) -> None:
        entries = self._watchers[kind]
        for i, (_, h) in enumerate(entries):
            if h == handler:
                del entries[i]
                return
        if kind == "Pod":
            for keyed in self._pod_node_watchers.values():
                for i, (_, h) in enumerate(keyed):
                    if h == handler:
                        del keyed[i]
                        self._n_keyed_pod_watchers -= 1
                        return

    def _notify(self, event_type: WatchEventType, obj: KubeObject) -> None:
        version = self._versions[obj.kind] + 1
        self._versions[obj.kind] = version
        if event_type is not WatchEventType.DELETED:
            obj.meta.resource_version = version
        if not self.available or obj.kind in self._drop_kinds:
            # The notification plane is down (outage) or this kind's
            # streams are broken (drop window): the write happened, the
            # version advanced, but nobody hears about it.
            self._c_dropped.inc(self.watcher_count(obj.kind), kind=obj.kind)
            return
        event = WatchEvent(event_type, obj, self.engine.now, version=version)
        targets = self._watchers[obj.kind]
        if obj.kind == "Pod":
            node = obj.node  # type: ignore[attr-defined]
            keyed = (
                self._pod_node_watchers.get(node.name)
                if node is not None
                else None
            )
            if keyed:
                # Merge back into registration order so same-instant
                # handler execution order is identical to the unscoped-
                # watch behaviour.
                targets = sorted(
                    targets + keyed, key=lambda entry: entry[0]
                )
        for _, handler in list(targets):
            self.engine.call_soon(handler, event)

    # ------------------------------------------------------------- helpers
    def pods(self, selector: Optional[Dict[str, str]] = None) -> List[Pod]:
        return [p for p in self.list("Pod", selector) if isinstance(p, Pod)]

    def nodes(self) -> List[Node]:
        return [n for n in self.list("Node") if isinstance(n, Node)]

    def ready_nodes(self) -> List[Node]:
        return [n for n in self.nodes() if n.ready and not n.deleted]

    def pending_pods(self) -> List[Pod]:
        return [p for p in self.pods() if p.phase is PodPhase.PENDING and p.node is None]
