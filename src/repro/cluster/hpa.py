"""The Horizontal Pod Autoscaler — the paper's baseline (eq. 1).

Implements the Kubernetes HPA control law on CPU utilization:

    desired = ceil(currentReplicas × currentUtilization / targetUtilization)

with the behaviours the paper's §III-B and §VI-A discussions depend on:

* a **tolerance band** (default 10 %): ratios within ``1 ± tolerance``
  cause no action — this is why Config-99 "never scales up" (observed
  utilization sits near 65 %, ratio 0.66, and with the stabilization
  window holding the floor the replica count never rises);
* a **sync period** (default 15 s);
* a **scale-up rate cap**: per sync, replicas grow to at most
  ``max(2 × current, current + 4)`` — so a lower target (Config-10) does
  not scale faster than Config-50 once both saturate the cap;
* a **scale-down stabilization window** (default 300 s — "the default
  value is 5 minutes"): the effective recommendation is the *maximum* of
  the last window of recommendations, which keeps the cluster pinned at
  its peak while any recent sample wanted it big — the source of the HPA
  resource waste in fig 10.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Tuple

import math

from repro.cluster.metrics_server import MetricsServer
from repro.cluster.replicaset import WorkerReplicaSet
from repro.sim.engine import Engine, PeriodicTask
from repro.sim.tracing import MetricRecorder


@dataclass(frozen=True, slots=True)
class HpaConfig:
    """HPA tunables; defaults follow upstream Kubernetes."""

    target_cpu_utilization: float = 0.5  # Config-50 by default
    min_replicas: int = 1
    max_replicas: int = 20
    sync_period_s: float = 15.0
    tolerance: float = 0.1
    scale_down_stabilization_s: float = 300.0

    def __post_init__(self) -> None:
        if not 0 < self.target_cpu_utilization:
            raise ValueError("target_cpu_utilization must be positive")
        if self.min_replicas < 0 or self.max_replicas < self.min_replicas:
            raise ValueError(
                f"invalid replica bounds min={self.min_replicas} max={self.max_replicas}"
            )
        if self.tolerance < 0:
            raise ValueError("tolerance must be non-negative")


class HorizontalPodAutoscaler:
    """Scales a :class:`WorkerReplicaSet` from metrics-server utilization."""

    def __init__(
        self,
        engine: Engine,
        metrics: MetricsServer,
        target: WorkerReplicaSet,
        config: HpaConfig = HpaConfig(),
        recorder: Optional[MetricRecorder] = None,
    ) -> None:
        self.engine = engine
        self.metrics = metrics
        self.target = target
        self.config = config
        self.recorder = recorder
        #: (time, recommendation) pairs within the stabilization window.
        self._recommendations: Deque[Tuple[float, int]] = deque()
        self.sync_count = 0
        self.scale_events = 0
        self.last_utilization: Optional[float] = None
        self.last_desired: Optional[int] = None
        self._loop = PeriodicTask(engine, config.sync_period_s, self.sync, start_after=0.0)
        if target.current_count() < config.min_replicas:
            target.scale_to(config.min_replicas)

    def stop(self) -> None:
        self._loop.stop()

    # ----------------------------------------------------------------- sync
    def sync(self) -> None:
        self.sync_count += 1
        current = self.target.current_count()
        ready = self.target.ready_pods()
        utilization = self.metrics.average_utilization(ready)
        self.last_utilization = utilization

        raw_desired = self._raw_recommendation(current, len(ready), utilization)
        desired = self._stabilized(raw_desired)
        desired = max(self.config.min_replicas, min(self.config.max_replicas, desired))
        desired = self._cap_scale_up(current, desired)
        self.last_desired = desired

        if self.recorder is not None:
            self.recorder.set("hpa.utilization", utilization if utilization is not None else 0.0)
            self.recorder.set("hpa.desired", desired)
            self.recorder.set("hpa.raw_desired", raw_desired)

        if desired != current:
            self.scale_events += 1
            self.target.scale_to(desired)

    # ----------------------------------------------------------- components
    def _raw_recommendation(
        self, current: int, ready: int, utilization: Optional[float]
    ) -> int:
        """Equation (1) with the tolerance band."""
        if utilization is None:
            # No metrics yet (pods still starting): hold steady, as HPA
            # does when the metrics API returns no samples.
            return max(current, self.config.min_replicas)
        base = ready if ready > 0 else max(current, 1)
        target = self.config.target_cpu_utilization
        ratio = utilization / target
        if abs(ratio - 1.0) <= self.config.tolerance:
            return current
        return max(1, math.ceil(base * ratio))

    def _stabilized(self, raw: int) -> int:
        """Scale-down stabilization: use the max recommendation over the
        trailing window, so dips must persist before the cluster shrinks."""
        now = self.engine.now
        self._recommendations.append((now, raw))
        cutoff = now - self.config.scale_down_stabilization_s
        while self._recommendations and self._recommendations[0][0] < cutoff:
            self._recommendations.popleft()
        return max(rec for _, rec in self._recommendations)

    def _cap_scale_up(self, current: int, desired: int) -> int:
        """Upstream HPA's default scale-up policy: per sync period the
        replica count may at most double, or grow by 4, whichever is more."""
        if desired <= current:
            return desired
        cap = max(2 * current, current + 4)
        return min(desired, cap)
