"""Unit tests for container images/registry and base API objects."""

from __future__ import annotations

import pytest

from repro.cluster.images import ContainerImage, ImageRegistry
from repro.cluster.objects import KubeObject, ObjectMeta, Service, StatefulSet
from repro.sim.rng import RngRegistry


class TestContainerImage:
    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            ContainerImage("x", -1.0)

    def test_images_hashable_and_frozen(self):
        img = ContainerImage("x", 100)
        assert img in {img}
        with pytest.raises(AttributeError):
            img.size_mb = 5  # type: ignore[misc]


class TestImageRegistry:
    def test_pull_duration_deterministic_without_jitter(self):
        reg = ImageRegistry(RngRegistry(0), pull_bandwidth_mbps=100, fixed_overhead_s=2, jitter_cv=0)
        img = ContainerImage("x", 500)
        assert reg.pull_duration(img) == pytest.approx(7.0)

    def test_mean_pull_duration(self):
        reg = ImageRegistry(RngRegistry(0), pull_bandwidth_mbps=50, fixed_overhead_s=1)
        assert reg.mean_pull_duration(ContainerImage("x", 100)) == pytest.approx(3.0)

    def test_jitter_stays_near_mean(self):
        reg = ImageRegistry(RngRegistry(0), pull_bandwidth_mbps=100, jitter_cv=0.02)
        img = ContainerImage("x", 500)
        durations = [reg.pull_duration(img) for _ in range(100)]
        mean = sum(durations) / len(durations)
        assert abs(mean - 7.0) < 0.3

    def test_pulls_counted(self):
        reg = ImageRegistry(RngRegistry(0))
        reg.pull_duration(ContainerImage("x", 1))
        reg.pull_duration(ContainerImage("y", 1))
        assert reg.pulls_started == 2

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            ImageRegistry(RngRegistry(0), pull_bandwidth_mbps=0)
        with pytest.raises(ValueError):
            ImageRegistry(RngRegistry(0), fixed_overhead_s=-1)


class TestObjectMeta:
    def test_uids_unique(self):
        a = KubeObject("a")
        b = KubeObject("a")
        assert a.uid != b.uid

    def test_label_selector_matching(self):
        meta = ObjectMeta("x", "Pod", labels={"app": "wq", "tier": "worker"})
        assert meta.matches({"app": "wq"})
        assert meta.matches({"app": "wq", "tier": "worker"})
        assert not meta.matches({"app": "other"})
        assert meta.matches({})  # empty selector matches everything


class TestService:
    def test_valid_types(self):
        for t in ("ClusterIP", "LoadBalancer", "NodePort"):
            assert Service("s" + t, {}, service_type=t).service_type == t

    def test_invalid_type_rejected(self):
        with pytest.raises(ValueError):
            Service("s", {}, service_type="Magic")

    def test_selector_copied(self):
        sel = {"app": "m"}
        svc = Service("s", sel)
        sel["app"] = "changed"
        assert svc.selector == {"app": "m"}


class TestStatefulSet:
    def test_defaults(self):
        ss = StatefulSet("master")
        assert ss.replicas == 1
        assert ss.ready_replicas == 0

    def test_negative_replicas_rejected(self):
        with pytest.raises(ValueError):
            StatefulSet("m", replicas=-1)
