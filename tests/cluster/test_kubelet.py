"""Unit tests for the kubelet: image pulls, caching, container start/stop."""

from __future__ import annotations

import pytest

from repro.cluster.api import KubeApiServer
from repro.cluster.images import ContainerImage, ImageRegistry
from repro.cluster.kubelet import Kubelet, KubeletManager
from repro.cluster.node import N1_STANDARD_4, Node
from repro.cluster.pod import Pod, PodPhase, PodSpec, REASON_PULLED, REASON_PULLING
from repro.cluster.resources import ResourceVector
from repro.sim.rng import RngRegistry


@pytest.fixture
def api(engine):
    return KubeApiServer(engine)


@pytest.fixture
def registry():
    # 100 MB/s, 2 s overhead, no jitter → a 100 MB image pulls in 3 s.
    return ImageRegistry(RngRegistry(1), pull_bandwidth_mbps=100.0, jitter_cv=0.0)


@pytest.fixture
def node(api):
    n = Node("n1", N1_STANDARD_4)
    n.ready = True
    api.create(n)
    return n


def schedule_pod(api, node, name="p", image_mb=100.0):
    pod = Pod(name, PodSpec(ContainerImage("img", image_mb), ResourceVector(1, 512, 512)))
    api.create(pod)
    pod.mark_scheduled(0.0, node)
    node.bind(pod)
    api.mark_modified(pod)
    return pod


class TestImagePull:
    def test_uncached_image_pull_then_start(self, engine, api, registry, node):
        Kubelet(engine, api, node, registry)
        pod = schedule_pod(api, node)
        engine.run(until=10.0)
        assert pod.phase is PodPhase.RUNNING
        assert pod.had_event(REASON_PULLING)
        assert pod.had_event(REASON_PULLED)
        # pull 3s + start 1s
        assert pod.started_time == pytest.approx(4.0, abs=0.2)

    def test_image_cached_after_pull(self, engine, api, registry, node):
        Kubelet(engine, api, node, registry)
        schedule_pod(api, node, "p1")
        engine.run(until=10.0)
        assert "img" in node.cached_images

    def test_cached_image_starts_fast(self, engine, api, registry, node):
        Kubelet(engine, api, node, registry)
        schedule_pod(api, node, "p1")
        engine.run(until=10.0)
        pod2 = schedule_pod(api, node, "p2")
        engine.run(until=20.0)
        assert not pod2.had_event(REASON_PULLING)
        assert pod2.started_time == pytest.approx(10.0 + Kubelet.CONTAINER_START_LATENCY, abs=0.2)

    def test_pull_duration_scales_with_image_size(self, engine, api, registry, node):
        Kubelet(engine, api, node, registry)
        pod = schedule_pod(api, node, "big", image_mb=1000.0)
        engine.run(until=30.0)
        assert pod.started_time == pytest.approx(13.0, abs=0.5)  # 2 + 10 + 1

    def test_deleting_pod_mid_pull_aborts_start(self, engine, api, registry, node):
        Kubelet(engine, api, node, registry)
        pod = schedule_pod(api, node)
        engine.run(until=1.0)  # mid-pull
        api.delete("Pod", pod.name)
        engine.run(until=30.0)
        assert pod.phase is PodPhase.FAILED  # never Running


class TestStop:
    def test_stop_container_succeeds_pod(self, engine, api, registry, node):
        kubelet = Kubelet(engine, api, node, registry)
        pod = schedule_pod(api, node)
        engine.run(until=10.0)
        kubelet.stop_container(pod)
        assert pod.phase is PodPhase.SUCCEEDED

    def test_stop_container_failed_flag(self, engine, api, registry, node):
        kubelet = Kubelet(engine, api, node, registry)
        pod = schedule_pod(api, node)
        engine.run(until=10.0)
        kubelet.stop_container(pod, succeeded=False)
        assert pod.phase is PodPhase.FAILED

    def test_stop_foreign_pod_rejected(self, engine, api, registry, node):
        kubelet = Kubelet(engine, api, node, registry)
        other_node = Node("n2")
        other_node.ready = True
        api.create(other_node)
        pod = schedule_pod(api, other_node, "other")
        with pytest.raises(RuntimeError):
            kubelet.stop_container(pod)

    def test_stop_terminal_pod_is_noop(self, engine, api, registry, node):
        kubelet = Kubelet(engine, api, node, registry)
        pod = schedule_pod(api, node)
        engine.run(until=10.0)
        kubelet.stop_container(pod)
        kubelet.stop_container(pod, succeeded=False)
        assert pod.phase is PodPhase.SUCCEEDED


class TestKubeletManager:
    def test_kubelet_created_per_node(self, engine, api, registry):
        manager = KubeletManager(engine, api, registry)
        n1 = Node("n1")
        n1.ready = True
        api.create(n1)
        engine.run(until=1.0)
        assert manager.for_node(n1) is not None

    def test_kubelet_removed_with_node(self, engine, api, registry):
        manager = KubeletManager(engine, api, registry)
        n1 = Node("n1")
        n1.ready = True
        api.create(n1)
        engine.run(until=1.0)
        api.delete("Node", "n1")
        engine.run(until=2.0)
        assert manager.for_node(n1) is None

    def test_for_pod_resolves_through_node(self, engine, api, registry):
        manager = KubeletManager(engine, api, registry)
        n1 = Node("n1", N1_STANDARD_4)
        n1.ready = True
        api.create(n1)
        engine.run(until=1.0)
        pod = schedule_pod(api, n1)
        assert manager.for_pod(pod) is manager.for_node(n1)

    def test_for_unbound_pod_is_none(self, engine, api, registry):
        manager = KubeletManager(engine, api, registry)
        pod = Pod("p", PodSpec(ContainerImage("i", 1), ResourceVector(1, 1, 1)))
        assert manager.for_pod(pod) is None
