"""Unit tests for the preemptible (spot) node pool in the cloud controller."""

from __future__ import annotations

import pytest

from repro.cluster.api import KubeApiServer
from repro.cluster.cloud import (
    CloudController,
    CloudControllerConfig,
    PreemptiblePoolConfig,
)
from repro.cluster.images import ContainerImage
from repro.cluster.node import N1_STANDARD_4, PREEMPTIBLE_LABEL
from repro.cluster.pod import Pod, PodSpec, REASON_FAILED_SCHEDULING
from repro.cluster.resources import ResourceVector
from repro.sim.rng import RngRegistry

GRACE_S = 30.0


@pytest.fixture
def api(engine):
    return KubeApiServer(engine)


def make_controller(engine, api, rng=None, *, pool=None, **overrides):
    defaults = dict(
        machine_type=N1_STANDARD_4,
        min_nodes=0,
        max_nodes=5,
        scan_period_s=10.0,
        reservation_mean_s=100.0,
        reservation_std_s=0.0,
        idle_timeout_s=10_000.0,
        reservation_floor_s=10.0,
        preemptible=pool or PreemptiblePoolConfig(grace_period_s=GRACE_S),
    )
    defaults.update(overrides)
    return CloudController(
        engine, api, rng or RngRegistry(3), CloudControllerConfig(**defaults)
    )


def pending_pod(api, name="p", cores=4.0, *, spot=False):
    pod = Pod(
        name,
        PodSpec(
            ContainerImage("i", 10),
            ResourceVector(cores, 1024, 1024),
            node_selector={PREEMPTIBLE_LABEL: "true"} if spot else {},
        ),
    )
    pod.add_event(0.0, REASON_FAILED_SCHEDULING, "Insufficient Resource")
    api.create(pod)
    return pod


class TestPoolConfig:
    def test_negative_max_nodes_rejected(self):
        with pytest.raises(ValueError):
            PreemptiblePoolConfig(max_nodes=-1)

    def test_negative_grace_rejected(self):
        with pytest.raises(ValueError):
            PreemptiblePoolConfig(grace_period_s=-1.0)

    def test_stockout_prob_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            PreemptiblePoolConfig(stockout_prob=1.5)

    def test_nonpositive_reclaim_interval_rejected(self):
        with pytest.raises(ValueError):
            PreemptiblePoolConfig(reclaim_interval_s=0.0)


class TestSpotProvisioning:
    def test_spot_selector_lands_in_spot_pool(self, engine, api):
        ctl = make_controller(engine, api)
        pending_pod(api, spot=True)
        engine.run(until=150.0)
        assert ctl.spot_node_count() == 1
        assert ctl.ondemand_node_count() == 0
        (node,) = api.nodes()
        assert node.preemptible
        assert node.meta.labels[PREEMPTIBLE_LABEL] == "true"

    def test_pools_scale_independently(self, engine, api):
        ctl = make_controller(engine, api)
        pending_pod(api, "od", spot=False)
        pending_pod(api, "sp", spot=True)
        engine.run(until=150.0)
        assert ctl.ondemand_node_count() == 1
        assert ctl.spot_node_count() == 1

    def test_spot_pool_cap(self, engine, api):
        pool = PreemptiblePoolConfig(max_nodes=2, grace_period_s=GRACE_S)
        ctl = make_controller(engine, api, pool=pool)
        for i in range(6):
            pending_pod(api, f"p{i}", spot=True)
        engine.run(until=500.0)
        assert ctl.spot_node_count() == 2

    def test_no_pool_means_spot_pods_starve(self, engine, api):
        ctl = make_controller(engine, api, preemptible=None)
        pending_pod(api, spot=True)
        engine.run(until=500.0)
        assert ctl.node_count() == 0


class TestStockouts:
    def test_certain_stockout_never_provisions(self, engine, api):
        pool = PreemptiblePoolConfig(stockout_prob=1.0, grace_period_s=GRACE_S)
        ctl = make_controller(engine, api, pool=pool)
        pending_pod(api, spot=True)
        engine.run(until=500.0)
        assert ctl.spot_node_count() == 0
        assert ctl.spot_stockouts > 1  # retried on later scans

    def test_stockouts_seeded(self, engine, api):
        pool = PreemptiblePoolConfig(stockout_prob=0.5, grace_period_s=GRACE_S)
        ctl = make_controller(engine, api, rng=RngRegistry(11), pool=pool)
        for i in range(4):
            pending_pod(api, f"p{i}", spot=True)
        engine.run(until=800.0)
        # With p=0.5 some requests fail, but pending pods retry until
        # the pool eventually fills.
        assert ctl.spot_stockouts >= 1
        assert ctl.spot_node_count() >= 1


class TestPreemption:
    def _provision_spot(self, engine, api, ctl, count=2):
        for i in range(count):
            pending_pod(api, f"p{i}", spot=True)
        engine.run(until=engine.now + 150.0)
        assert ctl.spot_node_count() == count

    def test_notice_cordons_then_grace_kills(self, engine, api):
        ctl = make_controller(engine, api)
        self._provision_spot(engine, api, ctl, count=1)
        (node,) = api.nodes()
        t0 = engine.now
        assert ctl.begin_preemption(node)
        assert node.preemption_notice_at == t0
        assert node.preemption_grace_s == GRACE_S
        assert node.unschedulable
        engine.run(until=t0 + GRACE_S - 1.0)
        assert not node.deleted  # still inside the grace window
        engine.run(until=t0 + GRACE_S + 1.0)
        assert node.deleted
        assert ctl.preemptions == 1
        assert ctl.spot_node_count() == 0

    def test_pods_on_node_die_at_expiry(self, engine, api):
        ctl = make_controller(engine, api)
        self._provision_spot(engine, api, ctl, count=1)
        (node,) = api.nodes()
        pod = api.list("Pod")[0]
        pod.mark_scheduled(engine.now, node)
        node.bind(pod)
        ctl.begin_preemption(node)
        engine.run(until=engine.now + GRACE_S + 1.0)
        assert pod.name not in {p.name for p in api.list("Pod")}

    def test_double_notice_rejected(self, engine, api):
        ctl = make_controller(engine, api)
        self._provision_spot(engine, api, ctl, count=1)
        (node,) = api.nodes()
        assert ctl.begin_preemption(node)
        assert not ctl.begin_preemption(node)
        engine.run(until=engine.now + GRACE_S + 1.0)
        assert ctl.preemptions == 1

    def test_ondemand_node_not_preemptable(self, engine, api):
        ctl = make_controller(engine, api)
        pending_pod(api, spot=False)
        engine.run(until=150.0)
        (node,) = api.nodes()
        assert not node.preemptible
        assert not ctl.begin_preemption(node)
        assert ctl.preempt_random_spot_nodes(5) == 0

    def test_preempt_random_spot_nodes_counts(self, engine, api):
        ctl = make_controller(engine, api)
        self._provision_spot(engine, api, ctl, count=2)
        assert ctl.preempt_random_spot_nodes(3) == 2  # only 2 exist
        assert ctl.preemptable_spot_nodes() == []  # all under notice

    def test_background_reclaim_loop(self, engine, api):
        pool = PreemptiblePoolConfig(
            grace_period_s=GRACE_S,
            reclaim_interval_s=60.0,
            reclaim_start_after_s=200.0,
        )
        ctl = make_controller(engine, api, pool=pool)
        self._provision_spot(engine, api, ctl, count=2)
        engine.run(until=2000.0)
        assert ctl.preemptions >= 1
