"""Unit tests for the kube-scheduler control loop."""

from __future__ import annotations

import pytest

from repro.cluster.api import KubeApiServer
from repro.cluster.images import ContainerImage
from repro.cluster.node import N1_STANDARD_4, Node
from repro.cluster.pod import Pod, PodPhase, PodSpec, REASON_FAILED_SCHEDULING
from repro.cluster.resources import ResourceVector
from repro.cluster.scheduler import KubeScheduler


@pytest.fixture
def api(engine):
    return KubeApiServer(engine)


def add_node(api, name, ready=True):
    node = Node(name, N1_STANDARD_4)
    node.ready = ready
    api.create(node)
    return node


def make_pod(name, cores=1.0):
    return Pod(name, PodSpec(ContainerImage("img", 10), ResourceVector(cores, 512, 512)))


class TestBinding:
    def test_pending_pod_bound_to_fitting_node(self, engine, api):
        scheduler = KubeScheduler(engine, api)
        node = add_node(api, "n1")
        pod = make_pod("p1")
        api.create(pod)
        engine.run(until=2.0)
        assert pod.node is node
        assert pod in node.pods
        assert scheduler.binds == 1

    def test_no_node_emits_insufficient_resource_event(self, engine, api):
        KubeScheduler(engine, api)
        pod = make_pod("p1")
        api.create(pod)
        engine.run(until=2.0)
        ev = pod.last_event(REASON_FAILED_SCHEDULING)
        assert ev is not None
        assert "Insufficient Resource" in ev.message

    def test_failed_scheduling_event_not_repeated(self, engine, api):
        KubeScheduler(engine, api, sync_period=1.0)
        pod = make_pod("p1")
        api.create(pod)
        engine.run(until=10.0)
        events = [e for e in pod.events if e.reason == REASON_FAILED_SCHEDULING]
        assert len(events) == 1

    def test_pod_bound_when_node_becomes_ready_later(self, engine, api):
        KubeScheduler(engine, api)
        pod = make_pod("p1")
        api.create(pod)
        engine.run(until=5.0)
        assert pod.node is None
        engine.call_in(1.0, add_node, api, "n1")
        engine.run(until=10.0)
        assert pod.node is not None

    def test_oversized_pod_never_bound(self, engine, api):
        KubeScheduler(engine, api)
        add_node(api, "n1")
        pod = make_pod("huge", cores=16)
        api.create(pod)
        engine.run(until=5.0)
        assert pod.node is None

    def test_capacity_respected_across_pods(self, engine, api):
        KubeScheduler(engine, api)
        add_node(api, "n1")
        pods = [make_pod(f"p{i}", cores=1) for i in range(6)]
        for p in pods:
            api.create(p)
        engine.run(until=5.0)
        bound = [p for p in pods if p.node is not None]
        assert len(bound) == 4  # 4-core node


class TestStrategies:
    def test_least_requested_spreads(self, engine, api):
        KubeScheduler(engine, api, strategy="least-requested")
        add_node(api, "n1")
        add_node(api, "n2")
        pods = [make_pod(f"p{i}") for i in range(2)]
        for p in pods:
            api.create(p)
        engine.run(until=5.0)
        assert {p.node.name for p in pods} == {"n1", "n2"}

    def test_binpack_concentrates(self, engine, api):
        KubeScheduler(engine, api, strategy="binpack")
        add_node(api, "n1")
        add_node(api, "n2")
        pods = [make_pod(f"p{i}") for i in range(2)]
        for p in pods:
            api.create(p)
        engine.run(until=5.0)
        assert len({p.node.name for p in pods}) == 1

    def test_unknown_strategy_rejected(self, engine, api):
        with pytest.raises(ValueError):
            KubeScheduler(engine, api, strategy="chaos")

    def test_stop_halts_loop(self, engine, api):
        scheduler = KubeScheduler(engine, api)
        scheduler.stop()
        add_node(api, "n1")
        # A pod created after stop is only bound via the event kick; remove
        # watchers' effect by ensuring sync loop is dead: the watch-kick
        # still binds, so verify the period loop is not pending anymore.
        assert not scheduler._loop.running
