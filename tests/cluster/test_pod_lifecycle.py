"""Fig 9 — the worker-pod lifecycle state machine.

These tests exercise both the Pod object's transitions and the full
integrated path (scheduler + kubelet + cloud controller) that produces
the four states: No Available Node → No Container Image → Running →
Stopped.
"""

from __future__ import annotations

import pytest

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.images import ContainerImage
from repro.cluster.node import N1_STANDARD_4, Node
from repro.cluster.pod import (
    Pod,
    PodPhase,
    PodSpec,
    REASON_FAILED_SCHEDULING,
    REASON_PULLED,
    REASON_PULLING,
    REASON_SCHEDULED,
    REASON_STARTED,
)
from repro.cluster.resources import ResourceVector
from repro.sim.rng import RngRegistry


def make_pod(name="p", cores=4.0) -> Pod:
    return Pod(name, PodSpec(ContainerImage("img", 100), ResourceVector(cores, 1024, 1024)))


class TestPodObject:
    def test_initial_phase_pending(self):
        assert make_pod().phase is PodPhase.PENDING

    def test_mark_scheduled_records_node_and_event(self):
        pod, node = make_pod(), Node("n1")
        pod.mark_scheduled(3.0, node)
        assert pod.node is node
        assert pod.scheduled_time == 3.0
        assert pod.last_event(REASON_SCHEDULED) is not None

    def test_cannot_start_before_scheduling(self):
        with pytest.raises(RuntimeError):
            make_pod().mark_running(1.0)

    def test_cannot_schedule_twice(self):
        pod = make_pod()
        pod.mark_scheduled(1.0, Node("n1"))
        pod.mark_running(2.0)
        with pytest.raises(RuntimeError):
            pod.mark_scheduled(3.0, Node("n2"))

    def test_running_then_succeeded(self):
        pod = make_pod()
        pod.mark_scheduled(1.0, Node("n1"))
        pod.mark_running(2.0)
        pod.mark_finished(5.0, succeeded=True)
        assert pod.phase is PodPhase.SUCCEEDED
        assert pod.phase.terminal

    def test_mark_finished_idempotent(self):
        pod = make_pod()
        pod.mark_scheduled(1.0, Node("n1"))
        pod.mark_running(2.0)
        pod.mark_finished(5.0)
        pod.mark_finished(9.0, succeeded=False)
        assert pod.phase is PodPhase.SUCCEEDED
        assert pod.finished_time == 5.0

    def test_initialization_interval(self):
        pod = make_pod()
        pod.meta.creation_time = 10.0
        pod.mark_scheduled(100.0, Node("n1"))
        pod.mark_running(170.0)
        assert pod.initialization_interval() == pytest.approx(160.0)

    def test_initialization_interval_none_before_start(self):
        assert make_pod().initialization_interval() is None

    def test_cpu_usage_zero_without_workload(self):
        pod = make_pod()
        pod.mark_scheduled(0.0, Node("n1"))
        pod.mark_running(0.0)
        assert pod.current_cpu_usage() == 0.0

    def test_cpu_usage_from_attached_fn(self):
        pod = make_pod()
        pod.mark_scheduled(0.0, Node("n1"))
        pod.mark_running(0.0)
        pod.cpu_usage_fn = lambda: 2.5
        assert pod.current_cpu_usage() == 2.5

    def test_cpu_usage_fn_ignored_unless_running(self):
        pod = make_pod()
        pod.cpu_usage_fn = lambda: 2.5
        assert pod.current_cpu_usage() == 0.0

    def test_event_log_query_helpers(self):
        pod = make_pod()
        pod.add_event(1.0, REASON_FAILED_SCHEDULING, "Insufficient Resource")
        pod.add_event(2.0, REASON_FAILED_SCHEDULING, "again")
        assert pod.had_event(REASON_FAILED_SCHEDULING)
        assert pod.last_event(REASON_FAILED_SCHEDULING).message == "again"
        assert pod.last_event("Nope") is None


class TestIntegratedLifecycle:
    """The full fig-9 path on a live cluster."""

    @pytest.fixture
    def cluster(self, engine):
        return Cluster(
            engine,
            RngRegistry(5),
            ClusterConfig(
                machine_type=N1_STANDARD_4,
                min_nodes=1,
                max_nodes=3,
                node_reservation_mean_s=100.0,
                node_reservation_std_s=0.0,
                registry_jitter_cv=0.0,
            ),
        )

    def test_warm_start_skips_failed_scheduling(self, engine, cluster):
        pod = make_pod("warm", cores=2.0)
        cluster.api.create(pod)
        engine.run(until=60.0)
        assert pod.phase is PodPhase.RUNNING
        assert not pod.had_event(REASON_FAILED_SCHEDULING)
        assert pod.had_event(REASON_PULLING)
        assert not pod.experienced_cold_start()

    def test_cold_start_full_state_sequence(self, engine, cluster):
        # Fill the only node, then ask for more.
        filler = make_pod("filler", cores=4.0)
        cluster.api.create(filler)
        engine.run(until=30.0)
        cold = make_pod("cold", cores=4.0)
        cluster.api.create(cold)
        engine.run(until=300.0)
        assert cold.phase is PodPhase.RUNNING
        reasons = [e.reason for e in cold.events]
        # The fig-9 sequence, in order:
        seq = [REASON_FAILED_SCHEDULING, REASON_SCHEDULED, REASON_PULLING, REASON_PULLED, REASON_STARTED]
        positions = [reasons.index(r) for r in seq]
        assert positions == sorted(positions)
        assert cold.experienced_cold_start()
        assert cold.initialization_interval() > 100.0

    def test_cached_image_skips_pulling(self, engine, cluster):
        first = make_pod("first", cores=2.0)
        cluster.api.create(first)
        engine.run(until=60.0)
        second = make_pod("second", cores=2.0)
        cluster.api.create(second)
        engine.run(until=120.0)
        assert second.phase is PodPhase.RUNNING
        assert not second.had_event(REASON_PULLING)

    def test_stopped_state_via_kubelet(self, engine, cluster):
        pod = make_pod("p", cores=2.0)
        cluster.api.create(pod)
        engine.run(until=60.0)
        cluster.kubelet_for(pod).stop_container(pod, succeeded=True)
        assert pod.phase is PodPhase.SUCCEEDED
