"""API-server outages, watch-stream drops, and informer resync."""

from __future__ import annotations

import pytest

from repro.cluster.api import KubeApiServer
from repro.cluster.images import ContainerImage
from repro.cluster.informer import Informer
from repro.cluster.pod import Pod, PodSpec
from repro.cluster.resources import ResourceVector


@pytest.fixture
def api(engine):
    return KubeApiServer(engine)


def make_pod(name="p"):
    return Pod(name, PodSpec(ContainerImage("i", 1), ResourceVector(1, 1, 1)))


class TestResourceVersions:
    def test_every_write_bumps_the_kind_version(self, engine, api):
        v0 = api.kind_version("Pod")
        pod = make_pod("a")
        api.create(pod)
        api.mark_modified(pod)
        api.delete("Pod", "a")
        assert api.kind_version("Pod") == v0 + 3

    def test_objects_carry_their_stamped_version(self, engine, api):
        pod = make_pod("a")
        api.create(pod)
        v1 = pod.meta.resource_version
        api.mark_modified(pod)
        assert pod.meta.resource_version == v1 + 1


class TestOutage:
    def test_outage_drops_notifications_but_not_store_writes(self, engine, api):
        informer = Informer(api, "Pod")
        api.begin_outage()
        api.create(make_pod("a"))
        engine.run()
        assert informer.get("a") is None  # notification lost
        assert [o.name for o in api.list("Pod")] == ["a"]  # write persisted
        assert api.dropped_events == 1

    def test_outage_counters_and_idempotence(self, engine, api):
        api.begin_outage()
        api.begin_outage()
        assert api.api_outages == 1
        assert not api.available
        api.end_outage()
        assert api.available

    def test_staleness_counts_missed_writes(self, engine, api):
        informer = Informer(api, "Pod")
        engine.run()
        api.begin_outage()
        api.create(make_pod("a"))
        api.create(make_pod("b"))
        engine.run()
        assert informer.staleness() == 2
        api.end_outage()
        api.create(make_pod("c"))
        engine.run()
        # The live event fast-forwarded last_version to the head.
        assert informer.staleness() == 0
        assert informer.get("a") is None  # still missing until a resync

    def test_resync_reconciles_cache_exactly_to_store(self, engine, api):
        informer = Informer(api, "Pod")
        kept = make_pod("kept")
        doomed = make_pod("doomed")
        api.create(kept)
        api.create(doomed)
        engine.run()
        api.begin_outage()
        api.mark_modified(kept)          # missed MODIFIED
        api.delete("Pod", "doomed")      # missed DELETED
        api.create(make_pod("late"))     # missed ADDED
        engine.run()
        api.end_outage()
        synthesized = informer.resync()
        assert synthesized == 3
        # Acceptance: the cache now equals the API store exactly.
        store = {o.name: o for o in api.list("Pod")}
        assert {n: o for n, o in informer.cache.items()} == store
        assert informer.staleness() == 0
        assert informer.resyncs == 1

    def test_resync_synthesizes_handler_events(self, engine, api):
        informer = Informer(api, "Pod")
        doomed = make_pod("doomed")
        api.create(doomed)
        engine.run()
        added, deleted = [], []
        informer.on_add(lambda o: added.append(o.name))
        informer.on_delete(lambda o: deleted.append(o.name))
        api.begin_outage()
        api.delete("Pod", "doomed")
        api.create(make_pod("late"))
        engine.run()
        api.end_outage()
        informer.resync()
        assert added == ["late"]
        assert deleted == ["doomed"]

    def test_resync_noop_while_api_down(self, engine, api):
        informer = Informer(api, "Pod")
        api.begin_outage()
        api.create(make_pod("a"))
        engine.run()
        assert informer.resync() == 0
        assert informer.get("a") is None

    def test_periodic_resync_heals_after_outage(self, engine, api):
        informer = Informer(api, "Pod", resync_period_s=10.0)
        api.begin_outage()
        api.create(make_pod("a"))
        engine.run(until=5.0)
        api.end_outage()
        engine.run(until=25.0)
        assert informer.get("a") is not None
        informer.close()

    def test_resync_is_idempotent(self, engine, api):
        informer = Informer(api, "Pod")
        api.begin_outage()
        api.create(make_pod("a"))
        engine.run()
        api.end_outage()
        assert informer.resync() == 1
        assert informer.resync() == 0  # nothing left to reconcile


class TestWatchDrop:
    def test_drop_window_loses_events_for_one_kind(self, engine, api):
        informer = Informer(api, "Pod")
        api.begin_watch_drop("Pod")
        api.create(make_pod("a"))
        engine.run()
        assert informer.get("a") is None
        assert api.dropped_events == 1
        api.end_watch_drop("Pod")
        api.create(make_pod("b"))
        engine.run()
        assert informer.get("b") is not None
        # A resync back-fills what the dropped stream missed.
        informer.resync()
        assert informer.get("a") is not None

    def test_end_watch_drop_none_clears_all_kinds(self, engine, api):
        api.begin_watch_drop("Pod")
        api.begin_watch_drop("Node")
        api.end_watch_drop()
        api.create(make_pod("a"))
        informer = Informer(api, "Pod")
        engine.run()
        assert informer.get("a") is not None
