"""Unit tests for ResourceVector arithmetic and the fits partial order."""

from __future__ import annotations

import pytest

from repro.cluster.resources import ResourceVector


class TestConstruction:
    def test_zero(self):
        z = ResourceVector.zero()
        assert z.is_zero()
        assert (z.cores, z.memory_mb, z.disk_mb) == (0.0, 0.0, 0.0)

    def test_of_cores(self):
        v = ResourceVector.of_cores(2.5)
        assert v.cores == 2.5
        assert v.memory_mb == 0.0

    def test_immutability(self):
        v = ResourceVector(1, 2, 3)
        with pytest.raises(AttributeError):
            v.cores = 5  # type: ignore[misc]


class TestArithmetic:
    def test_addition(self):
        assert ResourceVector(1, 10, 100) + ResourceVector(2, 20, 200) == ResourceVector(3, 30, 300)

    def test_subtraction_can_go_negative(self):
        d = ResourceVector(1, 0, 0) - ResourceVector(3, 0, 0)
        assert d.cores == -2

    def test_scale(self):
        assert ResourceVector(1, 2, 3).scale(4) == ResourceVector(4, 8, 12)

    def test_clamp_floor(self):
        v = ResourceVector(-1, 5, -0.5).clamp_floor(0.0)
        assert v == ResourceVector(0, 5, 0)

    def test_max_with(self):
        a = ResourceVector(1, 200, 3)
        b = ResourceVector(2, 100, 3)
        assert a.max_with(b) == ResourceVector(2, 200, 3)

    def test_iteration_order(self):
        assert list(ResourceVector(1, 2, 3)) == [1, 2, 3]


class TestFits:
    def test_fits_in_exact(self):
        v = ResourceVector(2, 100, 50)
        assert v.fits_in(v)

    def test_fits_in_componentwise(self):
        small = ResourceVector(1, 100, 10)
        big = ResourceVector(2, 200, 20)
        assert small.fits_in(big)
        assert not big.fits_in(small)

    def test_fits_is_partial_order(self):
        a = ResourceVector(2, 100, 10)
        b = ResourceVector(1, 200, 10)
        assert not a.fits_in(b)
        assert not b.fits_in(a)

    def test_fits_epsilon_absorbs_float_drift(self):
        cap = ResourceVector(1, 0, 0)
        third = ResourceVector(1 / 3, 0, 0)
        acc = ResourceVector.zero()
        for _ in range(3):
            acc = acc + third
        assert acc.fits_in(cap)

    def test_is_nonnegative(self):
        assert ResourceVector(0, 0, 0).is_nonnegative()
        assert not ResourceVector(-1, 0, 0).is_nonnegative()

    def test_any_positive(self):
        assert ResourceVector(0, 0, 1).any_positive()
        assert not ResourceVector(0, 0, 0).any_positive()


class TestDominantShare:
    def test_dominant_fraction_simple(self):
        need = ResourceVector(1, 100, 0)
        cap = ResourceVector(4, 200, 100)
        assert need.dominant_fraction_of(cap) == pytest.approx(0.5)

    def test_dominant_fraction_zero_need(self):
        assert ResourceVector.zero().dominant_fraction_of(ResourceVector(4, 4, 4)) == 0.0

    def test_dominant_fraction_infinite_when_capacity_missing(self):
        need = ResourceVector(0, 100, 0)
        cap = ResourceVector(4, 0, 100)
        assert need.dominant_fraction_of(cap) == float("inf")

    def test_copies_fitting_in(self):
        task = ResourceVector(1, 2500, 100)
        worker = ResourceVector(3, 14 * 1024, 90 * 1024)
        assert task.copies_fitting_in(worker) == 3

    def test_copies_fitting_in_memory_bound(self):
        task = ResourceVector(1, 8000, 0)
        worker = ResourceVector(4, 15 * 1024, 0)
        assert task.copies_fitting_in(worker) == 1

    def test_copies_zero_when_does_not_fit(self):
        task = ResourceVector(8, 0, 0)
        worker = ResourceVector(4, 1024, 1024)
        assert task.copies_fitting_in(worker) == 0

    def test_str_representation(self):
        assert "cores=2" in str(ResourceVector(2, 4, 8))
