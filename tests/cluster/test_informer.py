"""Unit tests for the shared informer."""

from __future__ import annotations

import pytest

from repro.cluster.api import KubeApiServer
from repro.cluster.images import ContainerImage
from repro.cluster.informer import Informer
from repro.cluster.pod import Pod, PodSpec
from repro.cluster.resources import ResourceVector


@pytest.fixture
def api(engine):
    return KubeApiServer(engine)


def make_pod(name="p"):
    return Pod(name, PodSpec(ContainerImage("i", 1), ResourceVector(1, 1, 1)))


class TestCache:
    def test_cache_tracks_adds(self, engine, api):
        informer = Informer(api, "Pod")
        api.create(make_pod("a"))
        engine.run()
        assert informer.get("a") is not None
        assert len(informer) == 1

    def test_cache_replays_preexisting(self, engine, api):
        api.create(make_pod("a"))
        engine.run()
        informer = Informer(api, "Pod")
        engine.run()
        assert informer.get("a") is not None

    def test_cache_drops_deleted(self, engine, api):
        informer = Informer(api, "Pod")
        api.create(make_pod("a"))
        engine.run()
        api.delete("Pod", "a")
        engine.run()
        assert informer.get("a") is None

    def test_items_sorted(self, engine, api):
        informer = Informer(api, "Pod")
        api.create(make_pod("b"))
        api.create(make_pod("a"))
        engine.run()
        assert [o.name for o in informer.items()] == ["a", "b"]


class TestHandlers:
    def test_add_handler_fires(self, engine, api):
        informer = Informer(api, "Pod")
        added = []
        informer.on_add(lambda o: added.append(o.name))
        api.create(make_pod("a"))
        engine.run()
        assert added == ["a"]

    def test_update_handler_fires(self, engine, api):
        informer = Informer(api, "Pod")
        updated = []
        informer.on_update(lambda o: updated.append(o.name))
        pod = make_pod("a")
        api.create(pod)
        api.mark_modified(pod)
        engine.run()
        assert updated == ["a"]

    def test_delete_handler_fires(self, engine, api):
        informer = Informer(api, "Pod")
        deleted = []
        informer.on_delete(lambda o: deleted.append(o.name))
        api.create(make_pod("a"))
        api.delete("Pod", "a")
        engine.run()
        assert deleted == ["a"]

    def test_handlers_see_replayed_objects(self, engine, api):
        api.create(make_pod("early"))
        engine.run()
        informer = Informer(api, "Pod")
        added = []
        informer.on_add(lambda o: added.append(o.name))
        engine.run()
        assert added == ["early"]

    def test_events_seen_counter(self, engine, api):
        informer = Informer(api, "Pod")
        pod = make_pod("a")
        api.create(pod)
        api.mark_modified(pod)
        api.delete("Pod", "a")
        engine.run()
        assert informer.events_seen == 3

    def test_multiple_handlers_all_fire(self, engine, api):
        informer = Informer(api, "Pod")
        calls = []
        informer.on_add(lambda o: calls.append(1))
        informer.on_add(lambda o: calls.append(2))
        api.create(make_pod("a"))
        engine.run()
        assert calls == [1, 2]


class TestClose:
    def test_close_unsubscribes_from_the_api(self, engine, api):
        informer = Informer(api, "Pod")
        assert api.watcher_count("Pod") == 1
        informer.close()
        assert api.watcher_count("Pod") == 0
        api.create(make_pod("a"))
        engine.run()
        assert informer.get("a") is None

    def test_close_is_idempotent(self, engine, api):
        informer = Informer(api, "Pod")
        informer.close()
        informer.close()
        assert api.watcher_count("Pod") == 0

    def test_closed_informer_ignores_inflight_events(self, engine, api):
        informer = Informer(api, "Pod")
        api.create(make_pod("a"))  # event queued but not yet delivered
        informer.close()
        engine.run()
        assert informer.get("a") is None
        assert informer.events_seen == 0

    def test_no_handler_leak_across_two_runs(self, engine, api):
        """Back-to-back consumers on one shared API server must not
        accumulate watchers (experiments share a server; a leaked
        handler would see the next run's events)."""
        for _ in range(2):
            informer = Informer(api, "Pod", resync_period_s=30.0)
            seen = []
            informer.on_add(lambda o: seen.append(o.name))
            api.create(make_pod(f"p{len(api.list('Pod'))}"))
            engine.run(until=engine.now + 1.0)
            informer.close()
        assert api.watcher_count("Pod") == 0
