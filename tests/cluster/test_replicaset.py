"""Unit tests for the worker replica controller."""

from __future__ import annotations

import pytest

from repro.cluster.api import KubeApiServer
from repro.cluster.images import ContainerImage
from repro.cluster.pod import PodPhase, PodSpec
from repro.cluster.replicaset import WorkerReplicaSet
from repro.cluster.resources import ResourceVector


@pytest.fixture
def api(engine):
    return KubeApiServer(engine)


def spec_factory(name: str) -> PodSpec:
    return PodSpec(ContainerImage("img", 10), ResourceVector(1, 512, 512), labels={"app": "w"})


class TestScaling:
    def test_initial_replicas_created(self, engine, api):
        rs = WorkerReplicaSet(engine, api, "ws", spec_factory, replicas=3)
        assert rs.current_count() == 3
        assert len(api.pods({"replicaset": "ws"})) == 3

    def test_scale_up_adds_pods(self, engine, api):
        rs = WorkerReplicaSet(engine, api, "ws", spec_factory, replicas=2)
        rs.scale_to(5)
        assert rs.current_count() == 5

    def test_scale_down_deletes_newest_first(self, engine, api):
        rs = WorkerReplicaSet(engine, api, "ws", spec_factory)
        engine.call_in(1.0, rs.scale_to, 2)
        engine.call_in(2.0, rs.scale_to, 3)
        engine.run(until=3.0)
        rs.scale_to(2)
        remaining = {p.name for p in rs.pods()}
        assert remaining == {"ws-0001", "ws-0002"}

    def test_scale_to_zero(self, engine, api):
        rs = WorkerReplicaSet(engine, api, "ws", spec_factory, replicas=3)
        rs.scale_to(0)
        engine.run(until=1.0)
        assert rs.current_count() == 0

    def test_negative_replicas_rejected(self, engine, api):
        rs = WorkerReplicaSet(engine, api, "ws", spec_factory)
        with pytest.raises(ValueError):
            rs.scale_to(-1)

    def test_scale_returns_delta(self, engine, api):
        rs = WorkerReplicaSet(engine, api, "ws", spec_factory)
        assert rs.scale_to(4) == 4
        assert rs.scale_to(1) == -3

    def test_labels_carry_replicaset_and_template(self, engine, api):
        rs = WorkerReplicaSet(engine, api, "ws", spec_factory, replicas=1)
        pod = rs.pods()[0]
        assert pod.meta.labels["replicaset"] == "ws"
        assert pod.meta.labels["app"] == "w"


class TestReconciliation:
    def test_terminal_pod_replaced(self, engine, api):
        rs = WorkerReplicaSet(engine, api, "ws", spec_factory, replicas=2)
        victim = rs.pods()[0]
        victim.mark_finished(0.0, succeeded=False)
        api.mark_modified(victim)
        engine.run(until=1.0)
        assert rs.current_count() == 2
        assert rs.pods_created == 3

    def test_externally_deleted_pod_replaced(self, engine, api):
        rs = WorkerReplicaSet(engine, api, "ws", spec_factory, replicas=2)
        api.delete("Pod", rs.pods()[0].name)
        engine.run(until=1.0)
        assert rs.current_count() == 2

    def test_foreign_pods_ignored(self, engine, api):
        rs = WorkerReplicaSet(engine, api, "ws", spec_factory, replicas=1)
        other = WorkerReplicaSet(engine, api, "other", spec_factory, replicas=1)
        api.delete("Pod", other.pods()[0].name)
        engine.run(until=1.0)
        assert rs.pods_created == 1  # untouched by the other set's churn

    def test_ready_count_tracks_running(self, engine, api):
        rs = WorkerReplicaSet(engine, api, "ws", spec_factory, replicas=2)
        assert rs.ready_count() == 0  # still pending, no scheduler here
