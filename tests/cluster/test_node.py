"""Unit tests for nodes and machine types."""

from __future__ import annotations

import pytest

from repro.cluster.images import ContainerImage
from repro.cluster.node import (
    GKE_SMALL_3CPU,
    MachineType,
    N1_STANDARD_4,
    N1_STANDARD_4_RESERVED,
    Node,
)
from repro.cluster.pod import Pod, PodPhase, PodSpec
from repro.cluster.resources import ResourceVector


def make_pod(name="p", cores=1.0) -> Pod:
    return Pod(name, PodSpec(ContainerImage("img", 10), ResourceVector(cores, 512, 512)))


class TestMachineTypes:
    def test_n1_standard_4_shape(self):
        assert N1_STANDARD_4.capacity.cores == 4
        assert N1_STANDARD_4.capacity.memory_mb == 15 * 1024

    def test_reserved_variant_allocatable(self):
        alloc = N1_STANDARD_4_RESERVED.allocatable
        assert alloc.cores == 3
        assert alloc.memory_mb == 14 * 1024

    def test_fig4_machine_shape(self):
        assert GKE_SMALL_3CPU.capacity.cores == 3

    def test_over_reservation_rejected(self):
        bad = MachineType(
            "bad",
            capacity=ResourceVector(1, 100, 100),
            system_reserved=ResourceVector(2, 0, 0),
        )
        with pytest.raises(ValueError):
            _ = bad.allocatable


class TestNodeCapacity:
    def test_new_node_not_ready(self):
        assert not Node("n").ready

    def test_requested_sums_active_pods(self):
        node = Node("n")
        node.ready = True
        for i in range(3):
            pod = make_pod(f"p{i}")
            node.bind(pod)
        assert node.requested().cores == 3

    def test_requested_ignores_terminal_pods(self):
        node = Node("n")
        node.ready = True
        pod = make_pod()
        node.bind(pod)
        pod.mark_scheduled(0, node)
        pod.mark_running(0)
        pod.mark_finished(1)
        assert node.requested().cores == 0

    def test_free_never_negative(self):
        node = Node("n", N1_STANDARD_4)
        node.ready = True
        for i in range(5):
            node.bind(make_pod(f"p{i}", cores=1))
        assert node.free().is_nonnegative()

    def test_can_fit_respects_allocatable(self):
        node = Node("n", N1_STANDARD_4_RESERVED)
        node.ready = True
        assert node.can_fit(ResourceVector(3, 1024, 1024))
        assert not node.can_fit(ResourceVector(4, 1024, 1024))

    def test_can_fit_false_when_not_ready(self):
        node = Node("n")
        assert not node.can_fit(ResourceVector(1, 1, 1))

    def test_can_fit_false_when_cordoned(self):
        node = Node("n")
        node.ready = True
        node.unschedulable = True
        assert not node.can_fit(ResourceVector(1, 1, 1))

    def test_double_bind_rejected(self):
        node = Node("n")
        pod = make_pod()
        node.bind(pod)
        with pytest.raises(RuntimeError):
            node.bind(pod)

    def test_unbind_missing_pod_is_noop(self):
        Node("n").unbind(make_pod())


class TestNodeState:
    def test_is_idle_requires_ready_and_no_active_pods(self):
        node = Node("n")
        assert not node.is_idle()  # not ready
        node.ready = True
        assert node.is_idle()
        node.bind(make_pod())
        assert not node.is_idle()

    def test_cpu_usage_sums_running_pods(self):
        node = Node("n")
        node.ready = True
        pod = make_pod()
        node.bind(pod)
        pod.mark_scheduled(0, node)
        pod.mark_running(0)
        pod.cpu_usage_fn = lambda: 1.5
        assert node.cpu_usage() == 1.5
        assert node.utilization() == pytest.approx(1.5 / 4)

    def test_describe_snapshot(self):
        node = Node("n", N1_STANDARD_4)
        node.ready = True
        d = node.describe()
        assert d["name"] == "n"
        assert d["ready"] is True
        assert d["machine_type"] == "n1-standard-4"
