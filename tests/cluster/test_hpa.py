"""Unit tests for the Horizontal Pod Autoscaler control law.

The HPA is tested against a stub metrics source and replica target so
each behaviour — ratio control, tolerance band, scale-up rate cap,
scale-down stabilization — is isolated from cluster machinery.
"""

from __future__ import annotations

from typing import Optional

import pytest

from repro.cluster.hpa import HorizontalPodAutoscaler, HpaConfig
from repro.sim.engine import Engine


class StubMetrics:
    """Stands in for the metrics server: a settable utilization."""

    def __init__(self, utilization: Optional[float] = None):
        self.utilization = utilization

    def average_utilization(self, pods) -> Optional[float]:
        return self.utilization


class StubTarget:
    """Stands in for the replica set: all replicas instantly ready."""

    def __init__(self, replicas: int = 3):
        self.replicas = replicas
        self.history: list[int] = []

    def current_count(self) -> int:
        return self.replicas

    def ready_pods(self):
        return [object()] * self.replicas

    def scale_to(self, n: int) -> int:
        delta = n - self.replicas
        self.replicas = n
        self.history.append(n)
        return delta


def make_hpa(engine, metrics, target, **overrides):
    defaults = dict(
        target_cpu_utilization=0.5,
        min_replicas=1,
        max_replicas=100,
        sync_period_s=15.0,
        tolerance=0.1,
        scale_down_stabilization_s=300.0,
    )
    defaults.update(overrides)
    return HorizontalPodAutoscaler(engine, metrics, target, HpaConfig(**defaults))


class TestRatioControl:
    def test_equation_one_scale_up(self, engine):
        metrics, target = StubMetrics(1.0), StubTarget(4)
        make_hpa(engine, metrics, target)
        engine.run(until=1.0)  # first sync fires immediately
        # desired = ceil(4 * 1.0/0.5) = 8
        assert target.replicas == 8

    def test_scale_down_after_stabilization(self, engine):
        metrics, target = StubMetrics(1.0), StubTarget(10)
        make_hpa(
            engine, metrics, target,
            scale_down_stabilization_s=60.0, max_replicas=10,
        )
        engine.run(until=20.0)
        assert target.replicas == 10
        metrics.utilization = 0.1  # sustained dip from t=20
        engine.run(until=70.0)
        assert target.replicas == 10  # window still holds the old max
        engine.run(until=150.0)
        # desired = ceil(10 * 0.1/0.5) = 2 once the window drains
        assert target.replicas == 2

    def test_tolerance_band_suppresses_action(self, engine):
        # ratio = 0.52/0.5 = 1.04 → inside the 10% band → no scaling.
        metrics, target = StubMetrics(0.52), StubTarget(5)
        hpa = make_hpa(engine, metrics, target)
        engine.run(until=100.0)
        assert target.replicas == 5
        assert hpa.scale_events == 0

    def test_config99_never_scales_up(self, engine):
        """The paper's fig-2 Config-99 pathology: 65% usage vs a 99%
        target is ratio 0.66 — a scale-DOWN recommendation — so the pool
        never grows regardless of queue length."""
        metrics, target = StubMetrics(0.65), StubTarget(3)
        make_hpa(engine, metrics, target, target_cpu_utilization=0.99, min_replicas=3)
        engine.run(until=1000.0)
        assert target.replicas == 3

    def test_no_metrics_holds_steady(self, engine):
        metrics, target = StubMetrics(None), StubTarget(5)
        make_hpa(engine, metrics, target)
        engine.run(until=100.0)
        assert target.replicas == 5


class TestRateCaps:
    def test_scale_up_capped_at_double(self, engine):
        metrics, target = StubMetrics(10.0), StubTarget(8)
        make_hpa(engine, metrics, target)
        engine.run(until=1.0)
        assert target.replicas == 16  # not 160

    def test_scale_up_capped_at_plus_four_when_small(self, engine):
        metrics, target = StubMetrics(10.0), StubTarget(1)
        make_hpa(engine, metrics, target)
        engine.run(until=1.0)
        assert target.replicas == 5  # max(2*1, 1+4)

    def test_repeated_syncs_double_each_period(self, engine):
        metrics, target = StubMetrics(10.0), StubTarget(3)
        make_hpa(engine, metrics, target, max_replicas=60)
        engine.run(until=70.0)
        # syncs at t=0,15,30,45,60: 3 → 7 → 14 → 28 → 56 → 60
        assert target.history[:5] == [7, 14, 28, 56, 60]


class TestBounds:
    def test_max_replicas_clamped(self, engine):
        metrics, target = StubMetrics(5.0), StubTarget(10)
        make_hpa(engine, metrics, target, max_replicas=12)
        engine.run(until=100.0)
        assert target.replicas == 12

    def test_min_replicas_enforced_at_start(self, engine):
        metrics, target = StubMetrics(None), StubTarget(0)
        make_hpa(engine, metrics, target, min_replicas=3)
        assert target.replicas == 3

    def test_min_replicas_floor_on_scale_down(self, engine):
        metrics, target = StubMetrics(0.01), StubTarget(10)
        make_hpa(engine, metrics, target, min_replicas=2, scale_down_stabilization_s=10.0)
        engine.run(until=200.0)
        assert target.replicas == 2

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            HpaConfig(target_cpu_utilization=0.0)
        with pytest.raises(ValueError):
            HpaConfig(min_replicas=5, max_replicas=2)
        with pytest.raises(ValueError):
            HpaConfig(tolerance=-0.1)


class TestStabilization:
    def test_transient_dip_does_not_shrink(self, engine):
        metrics, target = StubMetrics(1.0), StubTarget(4)
        make_hpa(engine, metrics, target, scale_down_stabilization_s=300.0, max_replicas=8)
        engine.run(until=1.0)
        assert target.replicas == 8
        metrics.utilization = 0.05  # 60-second dip
        engine.run(until=70.0)
        metrics.utilization = 1.0
        engine.run(until=100.0)
        assert target.replicas == 8  # never shrank

    def test_stop_halts_syncs(self, engine):
        metrics, target = StubMetrics(10.0), StubTarget(1)
        hpa = make_hpa(engine, metrics, target)
        hpa.stop()
        engine.run(until=200.0)
        assert hpa.sync_count == 0
