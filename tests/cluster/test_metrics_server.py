"""Unit tests for the metrics server."""

from __future__ import annotations

import pytest

from repro.cluster.api import KubeApiServer
from repro.cluster.images import ContainerImage
from repro.cluster.metrics_server import MetricsServer
from repro.cluster.node import Node
from repro.cluster.pod import Pod, PodSpec
from repro.cluster.resources import ResourceVector


@pytest.fixture
def api(engine):
    return KubeApiServer(engine)


def running_pod(api, name="p", cores=1.0, usage=0.5):
    pod = Pod(name, PodSpec(ContainerImage("i", 1), ResourceVector(cores, 512, 512)))
    node = api.try_get("Node", "n1")
    if node is None:
        node = Node("n1")
        node.ready = True
        api.create(node)
    api.create(pod)
    pod.mark_scheduled(api.engine.now, node)
    node.bind(pod)
    pod.mark_running(api.engine.now)
    pod.cpu_usage_fn = lambda: usage
    return pod


class TestScraping:
    def test_pod_usage_none_before_scrape(self, engine, api):
        ms = MetricsServer(engine, api, sample_period=15.0)
        pod = running_pod(api)
        assert ms.pod_usage(pod) is None

    def test_pod_usage_after_scrape(self, engine, api):
        ms = MetricsServer(engine, api, sample_period=15.0)
        pod = running_pod(api, usage=0.8)
        engine.run(until=16.0)
        assert ms.pod_usage(pod) == pytest.approx(0.8)

    def test_window_average(self, engine, api):
        ms = MetricsServer(engine, api, sample_period=10.0, window=30.0)
        state = {"v": 0.0}
        pod = running_pod(api)
        pod.cpu_usage_fn = lambda: state["v"]
        engine.run(until=15.0)
        state["v"] = 3.0
        engine.run(until=35.0)
        # samples: 0.0 at t=0/10, 3.0 at t=20/30, all inside the 30 s
        # window at t=30 (cutoff is exclusive) → mean 1.5
        assert ms.pod_usage(pod) == pytest.approx(1.5)

    def test_samples_forgotten_after_pod_exits(self, engine, api):
        ms = MetricsServer(engine, api, sample_period=10.0)
        pod = running_pod(api)
        engine.run(until=11.0)
        pod.mark_finished(engine.now)
        engine.run(until=25.0)
        assert ms.pod_usage(pod) is None

    def test_pending_pods_not_scraped(self, engine, api):
        ms = MetricsServer(engine, api, sample_period=10.0)
        pod = Pod("pending", PodSpec(ContainerImage("i", 1), ResourceVector(1, 1, 1)))
        api.create(pod)
        engine.run(until=30.0)
        assert ms.pod_usage(pod) is None

    def test_invalid_config_rejected(self, engine, api):
        with pytest.raises(ValueError):
            MetricsServer(engine, api, sample_period=0)
        with pytest.raises(ValueError):
            MetricsServer(engine, api, sample_period=30, window=10)

    def test_stop_halts_scraping(self, engine, api):
        ms = MetricsServer(engine, api, sample_period=10.0)
        ms.stop()
        running_pod(api)
        engine.run(until=50.0)
        assert ms.scrapes == 0  # stop() cancelled even the initial scrape


class TestUtilization:
    def test_average_utilization_usage_over_request(self, engine, api):
        ms = MetricsServer(engine, api, sample_period=10.0)
        p1 = running_pod(api, "p1", cores=2.0, usage=1.0)
        p2 = running_pod(api, "p2", cores=2.0, usage=0.5)
        engine.run(until=11.0)
        assert ms.average_utilization([p1, p2]) == pytest.approx(1.5 / 4.0)

    def test_average_utilization_excludes_unsampled(self, engine, api):
        ms = MetricsServer(engine, api, sample_period=10.0)
        p1 = running_pod(api, "p1", cores=1.0, usage=1.0)
        engine.run(until=11.0)
        p2 = running_pod(api, "p2", cores=1.0, usage=0.0)  # not yet scraped
        assert ms.average_utilization([p1, p2]) == pytest.approx(1.0)

    def test_average_utilization_none_without_samples(self, engine, api):
        ms = MetricsServer(engine, api, sample_period=10.0)
        pod = running_pod(api)
        assert ms.average_utilization([pod]) is None

    def test_average_utilization_empty_list(self, engine, api):
        ms = MetricsServer(engine, api)
        assert ms.average_utilization([]) is None
