"""Unit tests for the API server: CRUD, selectors, watch semantics."""

from __future__ import annotations

import pytest

from repro.cluster.api import (
    ConflictError,
    KubeApiServer,
    NotFoundError,
    WatchEvent,
    WatchEventType,
)
from repro.cluster.images import ContainerImage
from repro.cluster.node import Node
from repro.cluster.objects import Service
from repro.cluster.pod import Pod, PodPhase, PodSpec
from repro.cluster.resources import ResourceVector


@pytest.fixture
def api(engine) -> KubeApiServer:
    return KubeApiServer(engine)


def make_pod(name: str = "p", labels=None) -> Pod:
    spec = PodSpec(
        ContainerImage("img", 10), ResourceVector(1, 100, 100), labels=labels or {}
    )
    return Pod(name, spec)


class TestCrud:
    def test_create_and_get(self, api):
        pod = make_pod("a")
        api.create(pod)
        assert api.get("Pod", "a") is pod

    def test_create_duplicate_name_conflicts(self, api):
        api.create(make_pod("a"))
        with pytest.raises(ConflictError):
            api.create(make_pod("a"))

    def test_get_missing_raises(self, api):
        with pytest.raises(NotFoundError):
            api.get("Pod", "nope")

    def test_try_get_returns_none(self, api):
        assert api.try_get("Pod", "nope") is None

    def test_delete_removes(self, api):
        api.create(make_pod("a"))
        api.delete("Pod", "a")
        assert api.try_get("Pod", "a") is None

    def test_delete_missing_raises(self, api):
        with pytest.raises(NotFoundError):
            api.delete("Pod", "nope")

    def test_try_delete_missing_returns_none(self, api):
        assert api.try_delete("Pod", "nope") is None

    def test_unknown_kind_raises(self, api):
        with pytest.raises(KeyError):
            api.list("Widget")

    def test_creation_time_stamped_by_engine(self, api, engine):
        engine.call_in(7.0, lambda: api.create(make_pod("late")))
        engine.run()
        assert api.get("Pod", "late").meta.creation_time == 7.0

    def test_list_sorted_by_creation_then_name(self, api, engine):
        api.create(make_pod("b"))
        api.create(make_pod("a"))
        names = [p.name for p in api.list("Pod")]
        assert names == ["a", "b"]  # same creation time → ordered by name

    def test_list_with_selector(self, api):
        api.create(make_pod("a", labels={"app": "x"}))
        api.create(make_pod("b", labels={"app": "y"}))
        assert [p.name for p in api.pods({"app": "x"})] == ["a"]

    def test_services_storable(self, api):
        svc = Service("master", {"app": "wq-master"}, service_type="LoadBalancer")
        api.create(svc)
        assert api.get("Service", "master") is svc


class TestWatch:
    def test_added_event_delivered_async(self, api, engine):
        events = []
        api.watch("Pod", events.append)
        api.create(make_pod("a"))
        assert events == []  # not yet: delivery is scheduled
        engine.run()
        assert [e.type for e in events] == [WatchEventType.ADDED]

    def test_replay_existing_on_subscribe(self, api, engine):
        api.create(make_pod("a"))
        engine.run()
        events = []
        api.watch("Pod", events.append, replay_existing=True)
        engine.run()
        assert [(e.type, e.obj.name) for e in events] == [(WatchEventType.ADDED, "a")]

    def test_no_replay_when_disabled(self, api, engine):
        api.create(make_pod("a"))
        engine.run()
        events = []
        api.watch("Pod", events.append, replay_existing=False)
        engine.run()
        assert events == []

    def test_modified_event_delivered(self, api, engine):
        events = []
        api.watch("Pod", events.append)
        pod = make_pod("a")
        api.create(pod)
        api.mark_modified(pod)
        engine.run()
        assert [e.type for e in events] == [WatchEventType.ADDED, WatchEventType.MODIFIED]

    def test_modified_after_delete_is_dropped(self, api, engine):
        events = []
        pod = make_pod("a")
        api.create(pod)
        engine.run()
        api.watch("Pod", events.append, replay_existing=False)
        api.delete("Pod", "a")
        api.mark_modified(pod)  # late status update
        engine.run()
        assert [e.type for e in events] == [WatchEventType.DELETED]

    def test_unwatch_stops_delivery(self, api, engine):
        events = []
        api.watch("Pod", events.append)
        api.unwatch("Pod", events.append)
        api.create(make_pod("a"))
        engine.run()
        assert events == []

    def test_writes_counter(self, api, engine):
        pod = make_pod("a")
        api.create(pod)
        api.mark_modified(pod)
        api.delete("Pod", "a")
        assert api.writes == 3


class TestPodTeardown:
    def test_deleting_running_pod_kills_container(self, api, engine):
        pod = make_pod("a")
        node = Node("n1")
        node.ready = True
        api.create(node)
        api.create(pod)
        pod.mark_scheduled(0.0, node)
        node.bind(pod)
        pod.mark_running(0.0)
        stopped = []
        pod.on_stop = stopped.append
        api.delete("Pod", "a")
        assert stopped == [pod]
        assert pod.phase is PodPhase.FAILED
        assert pod not in node.pods

    def test_deleting_pending_pod_marks_failed(self, api):
        pod = make_pod("a")
        api.create(pod)
        api.delete("Pod", "a")
        assert pod.phase is PodPhase.FAILED
        assert pod.deletion_requested


class TestHelpers:
    def test_pending_pods_excludes_bound(self, api):
        bound = make_pod("bound")
        pending = make_pod("pending")
        node = Node("n1")
        node.ready = True
        api.create(node)
        api.create(bound)
        api.create(pending)
        bound.mark_scheduled(0.0, node)
        node.bind(bound)
        assert api.pending_pods() == [pending]

    def test_ready_nodes_filters(self, api):
        n1, n2 = Node("n1"), Node("n2")
        n1.ready = True
        api.create(n1)
        api.create(n2)
        assert api.ready_nodes() == [n1]
