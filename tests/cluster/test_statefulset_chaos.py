"""Tests for the StatefulSet controller and chaos injection."""

from __future__ import annotations

import pytest

from repro.cluster.api import KubeApiServer
from repro.cluster.chaos import ChaosInjector
from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.images import ContainerImage
from repro.cluster.node import N1_STANDARD_4, Node
from repro.cluster.objects import StatefulSet
from repro.cluster.pod import Pod, PodPhase, PodSpec
from repro.cluster.statefulset import StatefulSetController
from repro.cluster.resources import ResourceVector
from repro.sim.rng import RngRegistry


TEMPLATE = PodSpec(ContainerImage("master", 100), ResourceVector(1, 2048, 2048), labels={"app": "m"})


@pytest.fixture
def api(engine):
    return KubeApiServer(engine)


def add_node(api, name="n1"):
    node = Node(name, N1_STANDARD_4)
    node.ready = True
    api.create(node)
    return node


class TestStatefulSetController:
    def test_creates_ordinal_pods(self, engine, api):
        ctl = StatefulSetController(engine, api)
        api.create(StatefulSet("master", replicas=2, template=TEMPLATE))
        engine.run(until=1.0)
        names = {p.name for p in api.pods()}
        assert names == {"master-0", "master-1"}
        assert ctl.pods_created == 2

    def test_no_template_no_pods(self, engine, api):
        StatefulSetController(engine, api)
        api.create(StatefulSet("empty", replicas=1))
        engine.run(until=1.0)
        assert api.pods() == []

    def test_pods_carry_statefulset_label(self, engine, api):
        StatefulSetController(engine, api)
        api.create(StatefulSet("master", replicas=1, template=TEMPLATE))
        engine.run(until=1.0)
        pod = api.get("Pod", "master-0")
        assert pod.meta.labels["statefulset"] == "master"
        assert pod.meta.labels["app"] == "m"

    def test_sticky_replacement_after_deletion(self, engine, api):
        ctl = StatefulSetController(engine, api)
        api.create(StatefulSet("master", replicas=1, template=TEMPLATE))
        engine.run(until=1.0)
        api.delete("Pod", "master-0")
        engine.run(until=1.0 + StatefulSetController.RESTART_BACKOFF_S + 2.0)
        replacement = api.try_get("Pod", "master-0")
        assert replacement is not None
        assert replacement.phase is PodPhase.PENDING  # new incarnation
        assert ctl.pods_replaced == 1

    def test_replacement_waits_for_backoff(self, engine, api):
        StatefulSetController(engine, api)
        api.create(StatefulSet("master", replicas=1, template=TEMPLATE))
        engine.run(until=1.0)
        api.delete("Pod", "master-0")
        engine.run(until=5.0)  # inside the 10 s backoff
        assert api.try_get("Pod", "master-0") is None

    def test_failed_pod_replaced(self, engine, api):
        ctl = StatefulSetController(engine, api)
        node = add_node(api)
        api.create(StatefulSet("master", replicas=1, template=TEMPLATE))
        engine.run(until=1.0)
        pod = api.get("Pod", "master-0")
        pod.mark_scheduled(engine.now, node)
        node.bind(pod)
        pod.mark_running(engine.now)
        pod.mark_finished(engine.now, succeeded=False)
        api.mark_modified(pod)
        engine.run(until=20.0)
        fresh = api.get("Pod", "master-0")
        assert fresh is not pod
        assert ctl.pods_replaced == 1

    def test_ready_replicas_tracked(self, engine, api):
        ctl = StatefulSetController(engine, api)
        node = add_node(api)
        sset = StatefulSet("master", replicas=1, template=TEMPLATE)
        api.create(sset)
        engine.run(until=1.0)
        pod = api.get("Pod", "master-0")
        pod.mark_scheduled(engine.now, node)
        node.bind(pod)
        pod.mark_running(engine.now)
        api.mark_modified(pod)
        engine.run(until=2.0)
        assert sset.ready_replicas == 1

    def test_deleted_set_not_reconciled(self, engine, api):
        StatefulSetController(engine, api)
        sset = StatefulSet("master", replicas=1, template=TEMPLATE)
        api.create(sset)
        engine.run(until=1.0)
        api.delete("StatefulSet", "master")
        api.delete("Pod", "master-0")
        engine.run(until=30.0)
        assert api.try_get("Pod", "master-0") is None


class TestChaos:
    @pytest.fixture
    def cluster(self, engine, rng):
        return Cluster(
            engine,
            rng,
            ClusterConfig(
                machine_type=N1_STANDARD_4,
                min_nodes=3,
                max_nodes=5,
                node_reservation_mean_s=60.0,
                node_reservation_std_s=0.0,
                registry_jitter_cv=0.0,
            ),
        )

    def test_kill_node_fails_its_pods(self, engine, rng, cluster):
        chaos = ChaosInjector(engine, cluster.api, rng)
        pod = Pod("p", PodSpec(ContainerImage("i", 10), ResourceVector(1, 512, 512)))
        cluster.api.create(pod)
        engine.run(until=30.0)
        assert pod.phase is PodPhase.RUNNING
        victims = chaos.kill_node(pod.node)
        assert pod in victims
        assert pod.phase is PodPhase.FAILED
        assert chaos.nodes_killed == 1

    def test_min_pool_heals_after_crash(self, engine, rng, cluster):
        chaos = ChaosInjector(engine, cluster.api, rng)
        chaos.kill_random_node()
        assert cluster.node_count() == 2
        engine.run(until=120.0)
        assert cluster.node_count() == 3  # cloud controller healed

    def test_kill_node_named_unknown_raises(self, engine, rng, cluster):
        chaos = ChaosInjector(engine, cluster.api, rng)
        with pytest.raises(KeyError):
            chaos.kill_node_named("nope")

    def test_evict_random_pod_with_selector(self, engine, rng, cluster):
        chaos = ChaosInjector(engine, cluster.api, rng)
        a = Pod("a", PodSpec(ContainerImage("i", 10), ResourceVector(1, 512, 512), labels={"app": "x"}))
        b = Pod("b", PodSpec(ContainerImage("i", 10), ResourceVector(1, 512, 512), labels={"app": "y"}))
        cluster.api.create(a)
        cluster.api.create(b)
        engine.run(until=30.0)
        victim = chaos.evict_random_pod({"app": "x"})
        assert victim is a
        assert b.phase is PodPhase.RUNNING

    def test_scheduled_failures_are_deterministic(self, engine, rng, cluster):
        chaos = ChaosInjector(engine, cluster.api, rng)
        chaos.schedule_node_failures(100.0, start_after=50.0)
        engine.run(until=400.0)
        killed_first = chaos.nodes_killed
        assert killed_first >= 1
        chaos.stop()
        before = chaos.nodes_killed
        engine.run(until=1000.0)
        assert chaos.nodes_killed == before  # stop() halts the schedule

    def test_invalid_interval_rejected(self, engine, rng, cluster):
        chaos = ChaosInjector(engine, cluster.api, rng)
        with pytest.raises(ValueError):
            chaos.schedule_node_failures(0.0)
