"""Tests for the StatefulSet controller and chaos injection."""

from __future__ import annotations

import pytest

from repro.cluster.api import KubeApiServer
from repro.cluster.chaos import ChaosInjector
from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.images import ContainerImage
from repro.cluster.node import N1_STANDARD_4, Node
from repro.cluster.objects import StatefulSet
from repro.cluster.pod import Pod, PodPhase, PodSpec
from repro.cluster.statefulset import StatefulSetController
from repro.cluster.resources import ResourceVector
from repro.sim.rng import RngRegistry


TEMPLATE = PodSpec(ContainerImage("master", 100), ResourceVector(1, 2048, 2048), labels={"app": "m"})


@pytest.fixture
def api(engine):
    return KubeApiServer(engine)


def add_node(api, name="n1"):
    node = Node(name, N1_STANDARD_4)
    node.ready = True
    api.create(node)
    return node


class TestStatefulSetController:
    def test_creates_ordinal_pods(self, engine, api):
        ctl = StatefulSetController(engine, api)
        api.create(StatefulSet("master", replicas=2, template=TEMPLATE))
        engine.run(until=1.0)
        names = {p.name for p in api.pods()}
        assert names == {"master-0", "master-1"}
        assert ctl.pods_created == 2

    def test_no_template_no_pods(self, engine, api):
        StatefulSetController(engine, api)
        api.create(StatefulSet("empty", replicas=1))
        engine.run(until=1.0)
        assert api.pods() == []

    def test_pods_carry_statefulset_label(self, engine, api):
        StatefulSetController(engine, api)
        api.create(StatefulSet("master", replicas=1, template=TEMPLATE))
        engine.run(until=1.0)
        pod = api.get("Pod", "master-0")
        assert pod.meta.labels["statefulset"] == "master"
        assert pod.meta.labels["app"] == "m"

    def test_sticky_replacement_after_deletion(self, engine, api):
        ctl = StatefulSetController(engine, api)
        api.create(StatefulSet("master", replicas=1, template=TEMPLATE))
        engine.run(until=1.0)
        api.delete("Pod", "master-0")
        engine.run(until=1.0 + StatefulSetController.RESTART_BACKOFF_S + 2.0)
        replacement = api.try_get("Pod", "master-0")
        assert replacement is not None
        assert replacement.phase is PodPhase.PENDING  # new incarnation
        assert ctl.pods_replaced == 1

    def test_replacement_waits_for_backoff(self, engine, api):
        StatefulSetController(engine, api)
        api.create(StatefulSet("master", replicas=1, template=TEMPLATE))
        engine.run(until=1.0)
        api.delete("Pod", "master-0")
        engine.run(until=5.0)  # inside the 10 s backoff
        assert api.try_get("Pod", "master-0") is None

    def test_failed_pod_replaced(self, engine, api):
        ctl = StatefulSetController(engine, api)
        node = add_node(api)
        api.create(StatefulSet("master", replicas=1, template=TEMPLATE))
        engine.run(until=1.0)
        pod = api.get("Pod", "master-0")
        pod.mark_scheduled(engine.now, node)
        node.bind(pod)
        pod.mark_running(engine.now)
        pod.mark_finished(engine.now, succeeded=False)
        api.mark_modified(pod)
        engine.run(until=20.0)
        fresh = api.get("Pod", "master-0")
        assert fresh is not pod
        assert ctl.pods_replaced == 1

    def test_ready_replicas_tracked(self, engine, api):
        ctl = StatefulSetController(engine, api)
        node = add_node(api)
        sset = StatefulSet("master", replicas=1, template=TEMPLATE)
        api.create(sset)
        engine.run(until=1.0)
        pod = api.get("Pod", "master-0")
        pod.mark_scheduled(engine.now, node)
        node.bind(pod)
        pod.mark_running(engine.now)
        api.mark_modified(pod)
        engine.run(until=2.0)
        assert sset.ready_replicas == 1

    def test_deleted_set_not_reconciled(self, engine, api):
        StatefulSetController(engine, api)
        sset = StatefulSet("master", replicas=1, template=TEMPLATE)
        api.create(sset)
        engine.run(until=1.0)
        api.delete("StatefulSet", "master")
        api.delete("Pod", "master-0")
        engine.run(until=30.0)
        assert api.try_get("Pod", "master-0") is None


class TestChaos:
    @pytest.fixture
    def cluster(self, engine, rng):
        return Cluster(
            engine,
            rng,
            ClusterConfig(
                machine_type=N1_STANDARD_4,
                min_nodes=3,
                max_nodes=5,
                node_reservation_mean_s=60.0,
                node_reservation_std_s=0.0,
                registry_jitter_cv=0.0,
            ),
        )

    def test_kill_node_fails_its_pods(self, engine, rng, cluster):
        chaos = ChaosInjector(engine, cluster.api, rng)
        pod = Pod("p", PodSpec(ContainerImage("i", 10), ResourceVector(1, 512, 512)))
        cluster.api.create(pod)
        engine.run(until=30.0)
        assert pod.phase is PodPhase.RUNNING
        victims = chaos.kill_node(pod.node)
        assert pod in victims
        assert pod.phase is PodPhase.FAILED
        assert chaos.nodes_killed == 1

    def test_min_pool_heals_after_crash(self, engine, rng, cluster):
        chaos = ChaosInjector(engine, cluster.api, rng)
        chaos.kill_random_node()
        assert cluster.node_count() == 2
        engine.run(until=120.0)
        assert cluster.node_count() == 3  # cloud controller healed

    def test_kill_node_named_unknown_raises(self, engine, rng, cluster):
        chaos = ChaosInjector(engine, cluster.api, rng)
        with pytest.raises(KeyError):
            chaos.kill_node_named("nope")

    def test_evict_random_pod_with_selector(self, engine, rng, cluster):
        chaos = ChaosInjector(engine, cluster.api, rng)
        a = Pod("a", PodSpec(ContainerImage("i", 10), ResourceVector(1, 512, 512), labels={"app": "x"}))
        b = Pod("b", PodSpec(ContainerImage("i", 10), ResourceVector(1, 512, 512), labels={"app": "y"}))
        cluster.api.create(a)
        cluster.api.create(b)
        engine.run(until=30.0)
        victim = chaos.evict_random_pod({"app": "x"})
        assert victim is a
        assert b.phase is PodPhase.RUNNING

    def test_scheduled_failures_are_deterministic(self, engine, rng, cluster):
        chaos = ChaosInjector(engine, cluster.api, rng)
        chaos.schedule_node_failures(100.0, start_after=50.0)
        engine.run(until=400.0)
        killed_first = chaos.nodes_killed
        assert killed_first >= 1
        chaos.stop()
        before = chaos.nodes_killed
        engine.run(until=1000.0)
        assert chaos.nodes_killed == before  # stop() halts the schedule

    def test_invalid_interval_rejected(self, engine, rng, cluster):
        chaos = ChaosInjector(engine, cluster.api, rng)
        with pytest.raises(ValueError):
            chaos.schedule_node_failures(0.0)

    def test_kill_node_counts_pod_victims(self, engine, rng, cluster):
        """`kill_node` must add every co-located pod to `pods_killed`."""
        chaos = ChaosInjector(engine, cluster.api, rng)
        pods = [
            Pod(f"p{i}", PodSpec(ContainerImage("i", 10), ResourceVector(1, 512, 512)))
            for i in range(3)
        ]
        for p in pods:
            cluster.api.create(p)
        engine.run(until=30.0)
        node = pods[0].node
        victims = chaos.kill_node(node)
        assert chaos.pods_killed == len(victims)
        assert chaos.nodes_killed == 1

    def test_evict_pod_counts(self, engine, rng, cluster):
        chaos = ChaosInjector(engine, cluster.api, rng)
        pod = Pod("p", PodSpec(ContainerImage("i", 10), ResourceVector(1, 512, 512)))
        cluster.api.create(pod)
        engine.run(until=30.0)
        chaos.evict_pod(pod)
        assert chaos.pods_killed == 1
        assert chaos.nodes_killed == 0


class TestScheduledPodEvictions:
    @pytest.fixture
    def cluster(self, engine, rng):
        return Cluster(
            engine,
            rng,
            ClusterConfig(
                machine_type=N1_STANDARD_4,
                min_nodes=3,
                max_nodes=5,
                node_reservation_mean_s=60.0,
                node_reservation_std_s=0.0,
                registry_jitter_cv=0.0,
            ),
        )

    def make_pods(self, engine, cluster, n=4, app="w"):
        pods = [
            Pod(
                f"{app}{i}",
                PodSpec(
                    ContainerImage("i", 10),
                    ResourceVector(1, 512, 512),
                    labels={"app": app},
                ),
            )
            for i in range(n)
        ]
        for p in pods:
            cluster.api.create(p)
        engine.run(until=30.0)
        return pods

    def test_evictions_fire_and_stop(self, engine, rng, cluster):
        chaos = ChaosInjector(engine, cluster.api, rng)
        self.make_pods(engine, cluster, n=4)
        chaos.schedule_pod_evictions(60.0, start_after=40.0)
        engine.run(until=400.0)
        assert chaos.pods_killed >= 1
        chaos.stop()
        before = chaos.pods_killed
        engine.run(until=1000.0)
        assert chaos.pods_killed == before

    def test_selector_limits_victims(self, engine, rng, cluster):
        chaos = ChaosInjector(engine, cluster.api, rng)
        workers = self.make_pods(engine, cluster, n=3, app="w")
        protected = self.make_pods(engine, cluster, n=2, app="m")
        chaos.schedule_pod_evictions(50.0, start_after=35.0, selector={"app": "w"})
        engine.run(until=600.0)
        assert chaos.pods_killed >= 1
        assert all(p.phase is PodPhase.RUNNING for p in protected)
        assert any(p.phase.terminal for p in workers)

    def test_same_seed_same_schedule(self, engine, rng, cluster):
        """Two injectors over identical pod sets draw identical gaps."""

        def run_once(seed):
            from repro.sim.engine import Engine

            eng = Engine()
            reg = RngRegistry(seed)
            clu = Cluster(
                eng,
                reg,
                ClusterConfig(
                    machine_type=N1_STANDARD_4,
                    min_nodes=3,
                    max_nodes=5,
                    node_reservation_mean_s=60.0,
                    node_reservation_std_s=0.0,
                    registry_jitter_cv=0.0,
                ),
            )
            pods = [
                Pod(
                    f"w{i}",
                    PodSpec(ContainerImage("i", 10), ResourceVector(1, 512, 512)),
                )
                for i in range(4)
            ]
            for p in pods:
                clu.api.create(p)
            eng.run(until=30.0)
            chaos = ChaosInjector(eng, clu.api, reg)
            chaos.schedule_pod_evictions(60.0, start_after=40.0)
            eng.run(until=500.0)
            return chaos.pods_killed, sorted(
                p.name for p in pods if p.phase.terminal
            )

        assert run_once(7) == run_once(7)

    def test_invalid_interval_rejected(self, engine, rng, cluster):
        chaos = ChaosInjector(engine, cluster.api, rng)
        with pytest.raises(ValueError):
            chaos.schedule_pod_evictions(-5.0)


class TestProvisioningFaultWindows:
    @pytest.fixture
    def cluster(self, engine, rng):
        return Cluster(
            engine,
            rng,
            ClusterConfig(
                machine_type=N1_STANDARD_4,
                min_nodes=2,
                max_nodes=4,
                node_reservation_mean_s=60.0,
                node_reservation_std_s=0.0,
                registry_jitter_cv=0.0,
            ),
        )

    def test_boot_failure_window_auto_restores(self, engine, rng, cluster):
        chaos = ChaosInjector(engine, cluster.api, rng, cloud=cluster.cloud)
        chaos.begin_boot_failures(1.0, duration_s=100.0)
        assert cluster.cloud.boot_failure_prob == 1.0
        assert chaos.boot_failure_windows == 1
        engine.run(until=150.0)
        assert cluster.cloud.boot_failure_prob == cluster.cloud.config.boot_failure_prob

    def test_boot_faults_require_cloud_handle(self, engine, rng, cluster):
        chaos = ChaosInjector(engine, cluster.api, rng)
        with pytest.raises(RuntimeError):
            chaos.begin_boot_failures(0.5)

    def test_boot_failure_prob_validated(self, engine, rng, cluster):
        chaos = ChaosInjector(engine, cluster.api, rng, cloud=cluster.cloud)
        with pytest.raises(ValueError):
            chaos.begin_boot_failures(1.5)

    def test_pull_stall_window_auto_restores(self, engine, rng, cluster):
        chaos = ChaosInjector(engine, cluster.api, rng, registry=cluster.registry)
        chaos.begin_image_pull_stall(3.0, duration_s=50.0)
        assert cluster.registry.stall_factor == 3.0
        assert chaos.pull_stall_windows == 1
        engine.run(until=80.0)
        assert cluster.registry.stall_factor == 1.0

    def test_pull_stalls_require_registry_handle(self, engine, rng, cluster):
        chaos = ChaosInjector(engine, cluster.api, rng)
        with pytest.raises(RuntimeError):
            chaos.begin_image_pull_stall(2.0)

    def test_pull_stall_factor_validated(self, engine, rng, cluster):
        chaos = ChaosInjector(engine, cluster.api, rng, registry=cluster.registry)
        with pytest.raises(ValueError):
            chaos.begin_image_pull_stall(0.5)


class TestMasterFailoverUnderChaos:
    """Satellite: kill the master's node mid-workload; the StatefulSet's
    sticky replacement must resume the queue and the workload must finish."""

    def make_stack(self, engine):
        from repro.cluster.node import N1_STANDARD_4_RESERVED
        from repro.hta.deployment import MasterDeployment
        from repro.hta.provisioner import WorkerProvisioner
        from repro.wq.estimator import DeclaredResourceEstimator
        from repro.wq.link import Link
        from repro.wq.master import Master
        from repro.wq.runtime import WorkerPodRuntime
        from repro.wq.task import Task

        cluster = Cluster(
            engine,
            RngRegistry(44),
            ClusterConfig(
                machine_type=N1_STANDARD_4_RESERVED,
                min_nodes=3,
                max_nodes=6,
                node_reservation_mean_s=80.0,
                node_reservation_std_s=0.0,
                registry_jitter_cv=0.0,
            ),
        )
        master = Master(
            engine,
            Link(engine, 500.0),
            estimator=DeclaredResourceEstimator(),
            start_available=False,
        )
        deployment = MasterDeployment(engine, cluster.api, master)
        runtime = WorkerPodRuntime(engine, cluster.api, cluster.kubelets, master)
        provisioner = WorkerProvisioner(
            engine,
            cluster.api,
            runtime,
            image=ContainerImage("wq-worker", 100.0),
            worker_request=N1_STANDARD_4_RESERVED.allocatable,
        )
        foot = ResourceVector(1, 1024, 512)
        tasks = [
            Task("c", execute_s=60.0, footprint=foot, declared=foot) for _ in range(10)
        ]
        return cluster, master, deployment, provisioner, tasks

    def test_chaos_kill_of_master_node_resumes_workload(self, engine):
        from repro.wq.task import TaskState

        cluster, master, deployment, provisioner, tasks = self.make_stack(engine)
        provisioner.create_workers(2)
        master.submit_many(tasks)
        engine.run(until=40.0)
        assert master.available
        running_before = master.stats().running
        assert running_before > 0  # genuinely mid-workload

        chaos = ChaosInjector(engine, cluster.api, RngRegistry(45))
        victims = chaos.kill_node(deployment.master_pod.node)
        assert chaos.pods_killed == len(victims) >= 1
        engine.run(until=45.0)
        assert not master.available
        assert master.outages == 1

        engine.run(until=4000.0)
        # Sticky replacement came back under the same ordinal identity...
        assert master.available
        assert deployment.controller.pods_replaced >= 1
        assert deployment.master_pod.name == f"{master.name}-0"
        # ...and the workload ran to completion.
        assert all(t.state is TaskState.DONE for t in tasks)
        assert master.all_done
