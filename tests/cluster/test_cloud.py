"""Unit tests for the cloud controller (node autoscaler)."""

from __future__ import annotations

import pytest

from repro.cluster.api import KubeApiServer
from repro.cluster.cloud import CloudController, CloudControllerConfig
from repro.cluster.images import ContainerImage
from repro.cluster.node import N1_STANDARD_4
from repro.cluster.pod import Pod, PodSpec, REASON_FAILED_SCHEDULING
from repro.cluster.resources import ResourceVector
from repro.cluster.scheduler import KubeScheduler
from repro.sim.rng import RngRegistry


@pytest.fixture
def api(engine):
    return KubeApiServer(engine)


def make_controller(engine, api, rng=None, **overrides):
    defaults = dict(
        machine_type=N1_STANDARD_4,
        min_nodes=1,
        max_nodes=5,
        scan_period_s=10.0,
        reservation_mean_s=100.0,
        reservation_std_s=0.0,
        idle_timeout_s=120.0,
        reservation_floor_s=10.0,
    )
    defaults.update(overrides)
    return CloudController(
        engine, api, rng or RngRegistry(3), CloudControllerConfig(**defaults)
    )


def pending_pod(api, name="p", cores=4.0):
    pod = Pod(name, PodSpec(ContainerImage("i", 10), ResourceVector(cores, 1024, 1024)))
    pod.add_event(0.0, REASON_FAILED_SCHEDULING, "Insufficient Resource")
    api.create(pod)
    return pod


def fill_existing_nodes(api):
    """Bind a node-sized filler pod to every ready node so pending pods
    cannot be packed into existing free capacity."""
    for i, node in enumerate(api.ready_nodes()):
        filler = Pod(
            f"filler-{i}",
            PodSpec(ContainerImage("i", 10), node.allocatable),
        )
        api.create(filler)
        filler.mark_scheduled(api.engine.now, node)
        node.bind(filler)


class TestBootstrap:
    def test_min_nodes_created_immediately(self, engine, api):
        make_controller(engine, api, min_nodes=3)
        assert len(api.ready_nodes()) == 3

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            CloudControllerConfig(min_nodes=5, max_nodes=2)

    def test_invalid_scan_period_rejected(self):
        with pytest.raises(ValueError):
            CloudControllerConfig(scan_period_s=0)


class TestScaleUp:
    def test_pending_pod_triggers_provisioning(self, engine, api):
        ctl = make_controller(engine, api)
        fill_existing_nodes(api)
        pending_pod(api)
        engine.run(until=150.0)
        assert ctl.node_count() == 2

    def test_reservation_latency_applies(self, engine, api):
        ctl = make_controller(engine, api)
        fill_existing_nodes(api)
        pending_pod(api)
        engine.run(until=50.0)
        assert ctl.node_count() == 1  # still reserving
        engine.run(until=150.0)
        assert ctl.node_count() == 2

    def test_max_nodes_cap(self, engine, api):
        ctl = make_controller(engine, api, max_nodes=2)
        for i in range(10):
            pending_pod(api, f"p{i}")
        engine.run(until=400.0)
        assert ctl.node_count() == 2

    def test_packing_estimate_shares_nodes(self, engine, api):
        ctl = make_controller(engine, api)
        fill_existing_nodes(api)
        # Four 1-core pods fit one 4-core node: only one new node needed.
        for i in range(4):
            pending_pod(api, f"p{i}", cores=1.0)
        engine.run(until=150.0)
        assert ctl.node_count() == 2

    def test_unpackable_pod_not_provisioned_for(self, engine, api):
        ctl = make_controller(engine, api)
        pending_pod(api, "huge", cores=64.0)
        engine.run(until=400.0)
        assert ctl.node_count() == 1

    def test_no_double_provisioning_while_in_flight(self, engine, api):
        ctl = make_controller(engine, api)
        fill_existing_nodes(api)
        pending_pod(api)
        engine.run(until=50.0)  # several scans while reservation pending
        assert ctl.target_count() == 2  # exactly one reservation in flight
        engine.run(until=150.0)
        assert ctl.node_count() == 2

    def test_max_concurrent_reservations_batches(self, engine, api):
        ctl = make_controller(engine, api, max_nodes=10, max_concurrent_reservations=2)
        for i in range(6):
            pending_pod(api, f"p{i}", cores=4.0)
        engine.run(until=105.0)
        assert ctl.node_count() == 3  # first batch of 2 landed
        engine.run(until=215.0)
        assert ctl.node_count() == 5

    def test_nodes_provisioned_counter(self, engine, api):
        ctl = make_controller(engine, api)
        fill_existing_nodes(api)
        pending_pod(api)
        engine.run(until=150.0)
        assert ctl.nodes_provisioned == 2  # bootstrap + scale-up


class TestScaleDown:
    def test_idle_node_removed_after_timeout(self, engine, api):
        ctl = make_controller(engine, api, min_nodes=1, max_nodes=5, idle_timeout_s=60.0)
        fill_existing_nodes(api)
        pending_pod(api)
        engine.run(until=150.0)
        assert ctl.node_count() == 2
        # Free everything so the extra node goes (and stays) idle.
        api.delete("Pod", "p")
        api.delete("Pod", "filler-0")
        engine.run(until=400.0)
        assert ctl.node_count() == 1
        assert ctl.nodes_removed == 1

    def test_never_below_min_nodes(self, engine, api):
        ctl = make_controller(engine, api, min_nodes=2, max_nodes=5, idle_timeout_s=30.0)
        engine.run(until=500.0)
        assert ctl.node_count() == 2

    def test_busy_node_not_removed(self, engine, api):
        ctl = make_controller(engine, api, min_nodes=1, max_nodes=5, idle_timeout_s=30.0)
        scheduler = KubeScheduler(engine, api)
        pod = Pod("busy", PodSpec(ContainerImage("i", 10), ResourceVector(1, 512, 512)))
        api.create(pod)
        engine.run(until=500.0)
        assert pod.node is not None
        assert ctl.node_count() == 1

    def test_idle_timer_resets_when_node_gets_work(self, engine, api):
        ctl = make_controller(engine, api, min_nodes=1, max_nodes=5, idle_timeout_s=100.0)
        scheduler = KubeScheduler(engine, api)
        # Node idle 50s, then a pod lands, finishing at 120; removal clock
        # must restart from ~120 — the node survives until ~220.
        node = api.ready_nodes()[0]

        def occupy():
            pod = Pod("later", PodSpec(ContainerImage("i", 10), ResourceVector(1, 512, 512)))
            api.create(pod)
            engine.call_in(70.0, lambda: api.delete("Pod", "later"))

        engine.call_in(50.0, occupy)
        engine.run(until=190.0)
        assert ctl.node_count() == 1  # min_nodes floor anyway

    def test_removed_node_deleted_from_api(self, engine, api):
        ctl = make_controller(engine, api, min_nodes=0, max_nodes=5, idle_timeout_s=30.0)
        pending_pod(api)
        engine.run(until=150.0)
        api.delete("Pod", "p")
        engine.run(until=400.0)
        assert api.nodes() == []
