"""Tests for the Cluster facade and its config plumbing."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.images import ContainerImage
from repro.cluster.node import GKE_SMALL_3CPU, N1_STANDARD_4
from repro.cluster.pod import Pod, PodSpec
from repro.cluster.resources import ResourceVector
from repro.sim.rng import RngRegistry


class TestConfig:
    def test_cloud_config_mirrors_cluster_config(self):
        cfg = ClusterConfig(
            machine_type=GKE_SMALL_3CPU,
            min_nodes=1,
            max_nodes=7,
            node_reservation_mean_s=42.0,
            node_idle_timeout_s=99.0,
            max_concurrent_reservations=4,
        )
        cloud = cfg.cloud_config()
        assert cloud.machine_type is GKE_SMALL_3CPU
        assert cloud.min_nodes == 1
        assert cloud.max_nodes == 7
        assert cloud.reservation_mean_s == 42.0
        assert cloud.idle_timeout_s == 99.0
        assert cloud.max_concurrent_reservations == 4


class TestFacade:
    @pytest.fixture
    def cluster(self, engine):
        return Cluster(
            engine,
            RngRegistry(2),
            ClusterConfig(machine_type=N1_STANDARD_4, min_nodes=2, max_nodes=4),
        )

    def test_bootstrap_pool(self, cluster):
        assert cluster.node_count() == 2
        assert cluster.total_ready_cores() == 8.0

    def test_kubelet_for_unscheduled_pod_raises(self, cluster):
        pod = Pod("p", PodSpec(ContainerImage("i", 1), ResourceVector(1, 1, 1)))
        with pytest.raises(RuntimeError):
            cluster.kubelet_for(pod)

    def test_kubelet_for_scheduled_pod(self, engine, cluster):
        pod = Pod("p", PodSpec(ContainerImage("i", 1), ResourceVector(1, 512, 512)))
        cluster.api.create(pod)
        engine.run(until=30.0)
        assert cluster.kubelet_for(pod) is not None

    def test_describe_keys(self, cluster):
        d = cluster.describe()
        assert set(d) >= {"time", "nodes", "pending_pods", "pods", "api_writes"}
        assert d["nodes"] == 2

    def test_stop_halts_control_loops(self, engine, cluster):
        cluster.stop()
        pod = Pod("p", PodSpec(ContainerImage("i", 1), ResourceVector(1, 512, 512)))
        cluster.api.create(pod)
        # The watch-kick still binds pods even with the periodic loop
        # stopped; but the metrics server must not scrape.
        engine.run(until=100.0)
        assert cluster.metrics.scrapes <= 1

    def test_shared_recorder_injected(self, engine):
        from repro.sim.tracing import MetricRecorder

        rec = MetricRecorder(engine)
        cluster = Cluster(engine, RngRegistry(1), ClusterConfig(min_nodes=1, max_nodes=2), rec)
        assert cluster.recorder is rec
