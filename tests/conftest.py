"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.images import ContainerImage
from repro.cluster.node import N1_STANDARD_4
from repro.cluster.resources import ResourceVector
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.wq.link import Link
from repro.wq.master import Master
from repro.wq.monitor import ResourceMonitor


@pytest.fixture
def engine() -> Engine:
    return Engine()


@pytest.fixture
def rng() -> RngRegistry:
    return RngRegistry(12345)


@pytest.fixture
def worker_image() -> ContainerImage:
    return ContainerImage("wq-worker", 500.0)


@pytest.fixture
def small_cluster(engine, rng) -> Cluster:
    """A 2..6-node cluster with deterministic (zero-jitter) latencies."""
    return Cluster(
        engine,
        rng,
        ClusterConfig(
            machine_type=N1_STANDARD_4,
            min_nodes=2,
            max_nodes=6,
            node_reservation_mean_s=100.0,
            node_reservation_std_s=0.0,
            registry_jitter_cv=0.0,
        ),
    )


@pytest.fixture
def link(engine) -> Link:
    return Link(engine, 100.0)


@pytest.fixture
def master(engine, link) -> Master:
    return Master(engine, link)


def make_resources(cores: float = 1.0, mem: float = 1024.0, disk: float = 1024.0) -> ResourceVector:
    return ResourceVector(cores=cores, memory_mb=mem, disk_mb=disk)
