"""Tests for the single-entry experiment API and its deprecated wrappers.

CI runs this module with ``-W error::DeprecationWarning``: every call to
a legacy ``run_*_experiment`` wrapper must go through ``pytest.warns``.
"""

from __future__ import annotations

import pytest

from repro.cluster.cluster import ClusterConfig
from repro.cluster.node import N1_STANDARD_4_RESERVED
from repro.experiments.runner import (
    POLICIES,
    ExperimentSpec,
    PolicyDefinition,
    StackConfig,
    register_policy,
    run_experiment,
    run_hpa_experiment,
    run_hta_experiment,
    run_static_experiment,
)
from repro.telemetry.explain import decision_events, explain_decisions
from repro.telemetry.session import TelemetryConfig
from repro.workloads.synthetic import uniform_bag


def small_stack(**overrides):
    defaults = dict(
        cluster=ClusterConfig(
            machine_type=N1_STANDARD_4_RESERVED,
            min_nodes=2,
            max_nodes=4,
            node_reservation_mean_s=60.0,
            node_reservation_std_s=0.0,
        ),
        seed=1,
    )
    defaults.update(overrides)
    return StackConfig(**defaults)


def workload():
    return uniform_bag(8, execute_s=20.0, declared=True)


def assert_same_result(a, b):
    """Bit-identical summaries and counters at a fixed seed."""
    assert a.summary() == b.summary()
    assert a.makespan_s == b.makespan_s
    assert a.tasks_completed == b.tasks_completed
    assert a.tasks_requeued == b.tasks_requeued
    assert a.nodes_peak == b.nodes_peak
    assert a.workers_started == b.workers_started
    assert a.extras == b.extras


class TestRunExperiment:
    def test_hta_runs(self):
        r = run_experiment(
            ExperimentSpec(workload(), policy="hta", stack=small_stack())
        )
        assert r.tasks_completed == 8
        assert r.name == "HTA"

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            run_experiment(ExperimentSpec(workload(), policy="nope"))

    def test_unknown_option_rejected(self):
        with pytest.raises(ValueError, match="unknown option"):
            run_experiment(
                ExperimentSpec(
                    workload(),
                    policy="hta",
                    stack=small_stack(),
                    options={"typo_option": 1},
                )
            )

    def test_static_validates_before_building(self):
        with pytest.raises(ValueError, match="n_workers must be positive"):
            run_experiment(
                ExperimentSpec(
                    workload(),
                    policy="static",
                    stack=small_stack(),
                    options={"n_workers": 0},
                )
            )

    def test_spec_seed_overrides_stack_seed(self):
        r1 = run_experiment(
            ExperimentSpec(workload(), policy="static", seed=3,
                           stack=small_stack(), options={"n_workers": 2})
        )
        r2 = run_experiment(
            ExperimentSpec(workload(), policy="static", seed=3,
                           stack=small_stack(seed=9), options={"n_workers": 2})
        )
        assert_same_result(r1, r2)

    def test_sharded_policy_runs_and_completes(self):
        r = run_experiment(
            ExperimentSpec(
                workload(),
                policy="sharded",
                stack=small_stack(),
                options={"shards": 2},
            )
        )
        assert r.tasks_completed == 8
        assert r.name == "HTA-sharded2"

    def test_sharded_validates_shard_count_and_mode(self):
        with pytest.raises(ValueError, match="shards must be a positive"):
            run_experiment(
                ExperimentSpec(
                    workload(),
                    policy="sharded",
                    stack=small_stack(),
                    options={"shards": 0},
                )
            )
        with pytest.raises(ValueError, match="unknown partition mode"):
            run_experiment(
                ExperimentSpec(
                    workload(),
                    policy="sharded",
                    stack=small_stack(),
                    options={"partition_mode": "nope"},
                )
            )

    def test_registry_is_extensible(self):
        base = POLICIES["static"]
        register_policy(
            PolicyDefinition(key="static-alias", build=base.build,
                             validate=base.validate)
        )
        try:
            r = run_experiment(
                ExperimentSpec(
                    workload(),
                    policy="static-alias",
                    stack=small_stack(),
                    options={"n_workers": 2},
                )
            )
            assert r.tasks_completed == 8
        finally:
            del POLICIES["static-alias"]


class TestDeprecatedWrappers:
    def test_hta_wrapper_warns_and_matches(self):
        with pytest.warns(DeprecationWarning, match="run_hta_experiment"):
            legacy = run_hta_experiment(workload(), stack_config=small_stack())
        new = run_experiment(
            ExperimentSpec(workload(), policy="hta", stack=small_stack())
        )
        assert_same_result(legacy, new)

    def test_hpa_wrapper_warns_and_matches(self):
        with pytest.warns(DeprecationWarning, match="run_hpa_experiment"):
            legacy = run_hpa_experiment(
                workload(), target_cpu=0.5, stack_config=small_stack()
            )
        new = run_experiment(
            ExperimentSpec(
                workload(),
                policy="hpa",
                stack=small_stack(),
                options={"target_cpu": 0.5},
            )
        )
        assert legacy.name == "HPA-50%"
        assert_same_result(legacy, new)

    def test_static_wrapper_warns_and_matches(self):
        with pytest.warns(DeprecationWarning, match="run_static_experiment"):
            legacy = run_static_experiment(
                workload(), n_workers=3, stack_config=small_stack()
            )
        new = run_experiment(
            ExperimentSpec(
                workload(),
                policy="static",
                stack=small_stack(),
                options={"n_workers": 3},
            )
        )
        assert legacy.name == "static-3"
        assert_same_result(legacy, new)


class TestTelemetryIntegration:
    def test_disabled_by_default(self):
        r = run_experiment(
            ExperimentSpec(workload(), policy="hta", stack=small_stack())
        )
        assert r.telemetry is not None
        assert not r.telemetry.enabled
        assert r.trace_events == []

    def test_decision_audit_every_cycle(self):
        r = run_experiment(
            ExperimentSpec(
                workload(),
                policy="hta",
                stack=small_stack(),
                telemetry=TelemetryConfig(enabled=True),
            )
        )
        decisions = decision_events(r.trace_events)
        assert len(decisions) >= 1
        # Every planning cycle the operator ran left an audit event.
        assert len(decisions) >= r.extras["plans"]
        assert {e.name for e in decisions} == {"decision"}
        table = explain_decisions(r.trace_events)
        assert "HTA decision timeline" in table

    def test_tracing_does_not_change_the_run(self):
        plain = run_experiment(
            ExperimentSpec(workload(), policy="hta", stack=small_stack())
        )
        traced = run_experiment(
            ExperimentSpec(
                workload(),
                policy="hta",
                stack=small_stack(),
                telemetry=TelemetryConfig(enabled=True),
            )
        )
        assert_same_result(plain, traced)

    def test_trace_out_writes_jsonl(self, tmp_path):
        from repro.telemetry.exporters import read_runs_jsonl

        out = tmp_path / "run.jsonl"
        run_experiment(
            ExperimentSpec(
                workload(),
                policy="hta",
                stack=small_stack(),
                telemetry=TelemetryConfig(enabled=True, trace_out=str(out)),
            )
        )
        pairs = read_runs_jsonl(str(out))
        assert pairs
        assert {run for run, _ in pairs} == {"HTA"}

    def test_wq_histograms_recorded_when_enabled(self):
        r = run_experiment(
            ExperimentSpec(
                workload(),
                policy="hta",
                stack=small_stack(),
                telemetry=TelemetryConfig(enabled=True),
            )
        )
        hist = r.telemetry.metrics.histogram(
            "wq_task_execute_seconds", "Task execution time"
        )
        total = sum(snap.count for _, snap in hist.samples())
        assert total == 8
