"""Tests for the fig-9 lifecycle-trace harness."""

from __future__ import annotations

import pytest

from repro.experiments import fig9


class TestFig9:
    @pytest.fixture(scope="class")
    def outcome(self):
        return fig9.run(seed=0)

    def test_all_states_crossed_in_order(self, outcome):
        pod, _ = outcome
        rows = fig9.lifecycle_trace(pod)
        states = [state for _, state, _ in rows]
        assert states == [
            "No Available Node",
            "Scheduled",
            "No Container Image",
            "Worker-Pod Running",
            "Worker-Pod Stopped",
        ]
        times = [t for t, _, _ in rows]
        assert times == sorted(times)

    def test_init_time_in_calibrated_band(self, outcome):
        _, init_time = outcome
        assert 140.0 < init_time < 180.0

    def test_report_renders_all_states(self, outcome):
        pod, init_time = outcome
        out = fig9.report(pod, init_time)
        for state in ("No Available Node", "Worker-Pod Running", "Worker-Pod Stopped"):
            assert state in out
        assert "Initialization time" in out
