"""Tests for the KEDA-style queue-length baseline."""

from __future__ import annotations

import pytest

from repro.baselines.queue_scaler import QueueLengthAutoscaler, QueueScalerConfig
from repro.cluster.cluster import ClusterConfig
from repro.cluster.node import N1_STANDARD_4_RESERVED
from repro.experiments.runner import (
    StackConfig,
    run_hta_experiment,
    run_queue_scaler_experiment,
)
from repro.sim.engine import Engine
from repro.workloads.iobound import iobound_parallel
from repro.workloads.synthetic import uniform_bag


def stack(seed=0, max_nodes=8):
    return StackConfig(
        cluster=ClusterConfig(
            machine_type=N1_STANDARD_4_RESERVED,
            min_nodes=2,
            max_nodes=max_nodes,
            node_reservation_mean_s=80.0,
            node_reservation_std_s=0.0,
        ),
        seed=seed,
    )


class TestConfigValidation:
    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            QueueScalerConfig(tasks_per_replica=0)
        with pytest.raises(ValueError):
            QueueScalerConfig(min_replicas=5, max_replicas=2)
        with pytest.raises(ValueError):
            QueueScalerConfig(polling_interval_s=0)
        with pytest.raises(ValueError):
            QueueScalerConfig(cooldown_s=-1)


class TestControlLaw:
    class StubMaster:
        def __init__(self, backlog):
            self._backlog = backlog

        def stats(self):
            class S:
                pass

            s = S()
            s.backlog = self._backlog
            return s

    class StubTarget:
        def __init__(self, replicas=1):
            self.replicas = replicas

        def current_count(self):
            return self.replicas

        def scale_to(self, n):
            self.replicas = n

    def test_desired_is_backlog_over_target(self, engine):
        master = self.StubMaster(backlog=9)
        target = self.StubTarget(1)
        QueueLengthAutoscaler(
            engine, master, target, QueueScalerConfig(tasks_per_replica=3.0, max_replicas=10)
        )
        engine.run(until=1.0)
        assert target.replicas == 3

    def test_clamped_to_max(self, engine):
        master = self.StubMaster(backlog=1000)
        target = self.StubTarget(1)
        QueueLengthAutoscaler(
            engine, master, target, QueueScalerConfig(max_replicas=5)
        )
        engine.run(until=1.0)
        assert target.replicas == 5

    def test_cooldown_delays_shrink(self, engine):
        master = self.StubMaster(backlog=30)
        target = self.StubTarget(1)
        QueueLengthAutoscaler(
            engine,
            master,
            target,
            QueueScalerConfig(tasks_per_replica=3.0, max_replicas=10, cooldown_s=120.0,
                              polling_interval_s=30.0),
        )
        engine.run(until=1.0)
        assert target.replicas == 10
        master._backlog = 0
        engine.run(until=100.0)
        assert target.replicas == 10  # still inside the cooldown
        engine.run(until=300.0)
        assert target.replicas == 1

    def test_dip_of_exactly_cooldown_never_shrinks(self, engine):
        """Boundary case: the backlog dips right after a poll and recovers
        exactly ``cooldown_s`` later. The last high recommendation sits
        precisely *at* the window cutoff on the final low poll — the
        eviction comparison is strict, so it must still count and the
        pool must never shrink (a dip must exceed the cooldown, not
        merely reach it)."""

        class RecordingTarget(self.StubTarget):
            def __init__(self, replicas=1):
                super().__init__(replicas)
                self.history = []

            def scale_to(self, n):
                super().scale_to(n)
                self.history.append(n)

        master = self.StubMaster(backlog=30)
        target = RecordingTarget(1)
        QueueLengthAutoscaler(
            engine,
            master,
            target,
            QueueScalerConfig(tasks_per_replica=3.0, max_replicas=10,
                              cooldown_s=120.0, polling_interval_s=30.0),
        )
        # High recommendation recorded at the t=0 poll.
        engine.run(until=1.0)
        assert target.replicas == 10
        # Dip: polls at 30/60/90/120 all see an empty queue. At t=120 the
        # t=0 high sample is exactly cooldown_s old — still in-window.
        master._backlog = 0
        engine.run(until=121.0)
        assert target.replicas == 10
        # Recovered before the t=150 poll: the window never went all-low.
        master._backlog = 30
        engine.run(until=300.0)
        assert target.replicas == 10
        assert all(n == 10 for n in target.history)
    def test_completes_workload(self):
        r = run_queue_scaler_experiment(
            uniform_bag(24, execute_s=40.0, declared=True),
            stack_config=stack(),
            tasks_per_replica=3.0,
        )
        assert r.tasks_completed == 24
        assert r.name == "KEDA-queue"

    def test_scales_on_io_bound_unlike_hpa(self):
        """The queue scaler has no CPU blind spot: it grows the pool for
        I/O-bound backlogs where HPA stays frozen."""
        r = run_queue_scaler_experiment(
            iobound_parallel(30, execute_s=60.0, declared=True),
            stack_config=stack(),
            tasks_per_replica=3.0,
        )
        t0, t1 = r.accountant.window()
        assert r.series("workers_connected").maximum(t0, t1) > 2.0
        assert r.tasks_completed == 30

    def test_hta_still_wastes_less_on_unknown_footprints(self):
        """With undeclared resources the queue scaler counts *tasks* while
        HTA estimates *resources* — HTA packs tighter."""
        wl = lambda: uniform_bag(30, execute_s=60.0, declared=False)
        keda = run_queue_scaler_experiment(
            wl(), stack_config=stack(), tasks_per_replica=1.0
        )
        hta = run_hta_experiment(wl(), stack_config=stack())
        assert keda.tasks_completed == hta.tasks_completed == 30
        assert (
            hta.accounting.accumulated_waste_core_s
            <= keda.accounting.accumulated_waste_core_s
        )
