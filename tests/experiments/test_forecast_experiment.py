"""Tests for the predictive experiment runners and the forecast_cmp harness."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import ClusterConfig
from repro.cluster.node import N1_STANDARD_4_RESERVED
from repro.experiments.continuous import (
    run_continuous_predictive,
    run_continuous_queue_scaler,
)
from repro.experiments.runner import StackConfig, run_predictive_experiment
from repro.forecast.scaler import PredictiveScalerConfig
from repro.makeflow.dag import WorkflowGraph
from repro.workloads.arrivals import periodic_arrivals
from repro.workloads.synthetic import uniform_bag


def stack(seed=0):
    return StackConfig(
        cluster=ClusterConfig(
            machine_type=N1_STANDARD_4_RESERVED,
            min_nodes=2,
            max_nodes=8,
            node_reservation_mean_s=80.0,
            node_reservation_std_s=0.0,
        ),
        seed=seed,
    )


def small_stream(n_bursts=2, tasks=6):
    return periodic_arrivals(
        lambda i: WorkflowGraph(uniform_bag(tasks, execute_s=40.0, declared=True)),
        interval_s=300.0,
        count=n_bursts,
    )


class TestRunPredictiveExperiment:
    def test_completes_a_workload(self):
        r = run_predictive_experiment(
            uniform_bag(18, execute_s=40.0, declared=True),
            stack_config=stack(),
        )
        assert r.tasks_completed == 18
        assert r.name == "Predictive"
        assert "scale_events" in r.extras
        assert "decisions" in r.extras
        assert r.extras["decisions"] > 0

    def test_respects_scaler_config_bounds(self):
        r = run_predictive_experiment(
            uniform_bag(12, execute_s=40.0, declared=True),
            stack_config=stack(),
            scaler_config=PredictiveScalerConfig(min_workers=2, max_workers=3),
        )
        assert r.tasks_completed == 12
        t0, t1 = r.accountant.window()
        assert r.series("forecast_pool").maximum(t0, t1) <= 3.0

    def test_deterministic_replay(self):
        def once():
            r = run_predictive_experiment(
                uniform_bag(12, execute_s=40.0, declared=True),
                stack_config=stack(seed=4),
            )
            return (
                r.makespan_s,
                r.accounting.accumulated_waste_core_s,
                r.accounting.accumulated_shortage_core_s,
            )

        assert once() == once()


class TestContinuousRunners:
    def test_predictive_stream_completes(self):
        r = run_continuous_predictive(small_stream(), stack_config=stack())
        assert r.workflows == 2
        assert r.result.tasks_completed == 12
        assert r.last_finish_s > 0

    def test_queue_scaler_stream_completes(self):
        r = run_continuous_queue_scaler(
            small_stream(), stack_config=stack(), tasks_per_replica=3.0
        )
        assert r.workflows == 2
        assert r.result.tasks_completed == 12


class TestForecastCmpHarness:
    def test_module_shape(self):
        from repro.experiments import forecast_cmp

        assert forecast_cmp.BURSTS * forecast_cmp.BURST_TASKS == 180
        assert callable(forecast_cmp.run)
        assert callable(forecast_cmp.report)
        assert callable(forecast_cmp.main)

    def test_report_renders_without_running(self):
        # report() only formats; build it from a cheap two-policy run.
        from repro.experiments import forecast_cmp

        results = {
            "HTA": run_continuous_predictive(
                small_stream(), stack_config=stack(), name="HTA"
            ),
            "HTA-hybrid": run_continuous_predictive(
                small_stream(), stack_config=stack(), name="HTA-hybrid"
            ),
            "Predictive": run_continuous_predictive(
                small_stream(), stack_config=stack(), name="Predictive"
            ),
            "KEDA-queue": run_continuous_queue_scaler(
                small_stream(), stack_config=stack(), name="KEDA-queue"
            ),
        }
        out = forecast_cmp.report(results)
        assert "Forecast comparison" in out
        assert "KEDA-queue" in out
        assert "wastes" in out
