"""Tests for the parameter-sweep utilities."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import ClusterConfig
from repro.cluster.node import GKE_SMALL_3CPU, N1_STANDARD_4_RESERVED, MachineType
from repro.cluster.resources import ResourceVector
from repro.experiments.runner import StackConfig
from repro.experiments.sweeps import (
    sweep_fixed_init_time,
    sweep_hpa_targets,
    sweep_max_workers,
    sweep_table,
    sweep_worker_sizes,
)
from repro.workloads.synthetic import uniform_bag


def stack(seed=0, machine=N1_STANDARD_4_RESERVED, min_nodes=2, max_nodes=6):
    return StackConfig(
        cluster=ClusterConfig(
            machine_type=machine,
            min_nodes=min_nodes,
            max_nodes=max_nodes,
            node_reservation_mean_s=80.0,
            node_reservation_std_s=0.0,
        ),
        seed=seed,
    )


def workload_factory(n=18, execute_s=40.0):
    return lambda: uniform_bag(n, execute_s=execute_s, declared=True)


class TestHpaTargetSweep:
    def test_runs_each_target(self):
        results = sweep_hpa_targets(
            workload_factory(), [0.2, 0.9], stack_config=stack(), min_replicas=2
        )
        assert set(results) == {0.2, 0.9}
        assert all(r.tasks_completed == 18 for r in results.values())

    def test_high_target_scales_less(self):
        results = sweep_hpa_targets(
            workload_factory(n=30, execute_s=60.0),
            [0.2, 0.95],
            stack_config=stack(),
            min_replicas=2,
        )
        def peak(r):
            t0, t1 = r.accountant.window()
            return r.series("workers_connected").maximum(t0, t1)

        assert peak(results[0.95]) <= peak(results[0.2])


class TestInitTimeSweep:
    def test_live_reference_included(self):
        results = sweep_fixed_init_time(
            workload_factory(), [30.0, 300.0], stack_config=stack()
        )
        assert set(results) == {"live", 30.0, 300.0}
        assert all(r.tasks_completed == 18 for r in results.values())

    def test_short_cycle_plans_more(self):
        results = sweep_fixed_init_time(
            workload_factory(n=30, execute_s=60.0),
            [10.0, 400.0],
            stack_config=stack(),
            include_live=False,
        )
        assert results[10.0].extras["plans"] > results[400.0].extras["plans"]


class TestWorkerSizeSweep:
    def test_granularity_curve(self):
        results = sweep_worker_sizes(
            workload_factory(n=24, execute_s=30.0),
            [1.0, 3.0],
            stack_config=stack(machine=GKE_SMALL_3CPU, min_nodes=4, max_nodes=4),
            total_cores=12.0,
        )
        assert set(results) == {1.0, 3.0}
        assert all(r.tasks_completed == 24 for r in results.values())

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            sweep_worker_sizes(
                workload_factory(), [0.0], stack_config=stack(), total_cores=12.0
            )


class TestQuotaSweep:
    def test_larger_quota_never_slower(self):
        results = sweep_max_workers(
            workload_factory(n=36, execute_s=60.0),
            [3, 6],
            stack_config=stack(max_nodes=8),
            initial_workers=3,
        )
        assert results[6].makespan_s <= results[3].makespan_s

    def test_quota_below_initial_rejected(self):
        with pytest.raises(ValueError):
            sweep_max_workers(
                workload_factory(), [2], stack_config=stack(), initial_workers=3
            )


class TestRendering:
    def test_sweep_table_lists_rows(self):
        results = sweep_hpa_targets(
            workload_factory(n=8, execute_s=20.0),
            [0.5],
            stack_config=stack(),
            min_replicas=2,
        )
        table = sweep_table(results, title="T")
        assert "T" in table
        assert "0.5" in table
