"""Tests for the `python -m repro.experiments` CLI."""

from __future__ import annotations

import pytest

from repro.experiments.__main__ import DESCRIPTIONS, FIGURES, main


class TestCli:
    def test_all_figures_registered(self):
        assert set(FIGURES) == {
            "failover", "fig2", "fig4", "fig5", "fig6", "fig9", "fig10",
            "fig11", "forecast", "integrity", "migration", "perf",
            "resilience", "recovery", "preemption", "shards", "soak",
        }

    def test_smoke_flag_runs_resilience(self, capsys):
        rc = main(["resilience", "--smoke"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "resilience" in out

    def test_smoke_flag_rejected_for_full_figures(self, capsys):
        rc = main(["fig6", "--smoke"])
        # --smoke silently applies only to smoke-capable figures.
        assert rc == 0

    def test_every_figure_has_a_description(self):
        assert set(DESCRIPTIONS) == set(FIGURES)
        assert all(DESCRIPTIONS[name] for name in FIGURES)

    def test_runs_a_cheap_figure(self, capsys):
        rc = main(["fig6"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "init latency mean" in out
        assert "regenerated in" in out

    def test_seed_flag_accepted(self, capsys):
        rc = main(["fig6", "--seed", "3"])
        assert rc == 0
        assert "seed=3" in capsys.readouterr().out

    def test_multiple_figures_in_one_invocation(self, capsys):
        rc = main(["fig6", "fig6"])
        out = capsys.readouterr().out
        assert rc == 0
        # Duplicates collapse: the figure runs once.
        assert out.count("=== fig6") == 1

    def test_list_prints_registry(self, capsys):
        rc = main(["list"])
        out = capsys.readouterr().out
        assert rc == 0
        for name in FIGURES:
            assert name in out
            assert DESCRIPTIONS[name] in out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit) as err:
            main(["fig99"])
        assert err.value.code == 2

    def test_figure_argument_required(self):
        with pytest.raises(SystemExit):
            main([])
