"""Tests for the `python -m repro.experiments` CLI."""

from __future__ import annotations

import pytest

from repro.experiments.__main__ import FIGURES, main


class TestCli:
    def test_all_figures_registered(self):
        assert set(FIGURES) == {"fig2", "fig4", "fig5", "fig6", "fig9", "fig10", "fig11"}

    def test_runs_a_cheap_figure(self, capsys):
        rc = main(["fig6"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "init latency mean" in out
        assert "regenerated in" in out

    def test_seed_flag_accepted(self, capsys):
        rc = main(["fig6", "--seed", "3"])
        assert rc == 0
        assert "seed=3" in capsys.readouterr().out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit) as err:
            main(["fig99"])
        assert err.value.code == 2

    def test_figure_argument_required(self):
        with pytest.raises(SystemExit):
            main([])
