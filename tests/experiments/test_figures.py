"""Figure-harness tests: structure checks plus the paper's qualitative claims.

The full-scale runs live in benchmarks/; here we verify each harness
produces well-formed output and, where cheap enough, that the paper's
qualitative findings hold (who wins, in which direction).
"""

from __future__ import annotations

import pytest

from repro.experiments import fig2, fig4, fig5, fig6, fig10, fig11
from repro.experiments.report import ascii_chart, kv_table, paper_vs_measured
from repro.sim.tracing import StepSeries


class TestFig6:
    def test_latency_matches_paper_band(self):
        result = fig6.run(seed=0, trials=10)
        assert len(result.samples) == 10
        # The simulated latency is calibrated to the paper's 157.4 ± 4.2.
        assert abs(result.mean_s - fig6.PAPER["mean_s"]) < 10.0
        assert result.std_s < 10.0

    def test_trials_are_independent_draws(self):
        result = fig6.run(seed=0, trials=5)
        assert len(set(result.samples)) > 1

    def test_report_renders(self):
        out = fig6.report(fig6.run(seed=0, trials=3))
        assert "paper vs measured" in out


class TestFig4:
    @pytest.fixture(scope="class")
    def results(self):
        return fig4.run(seed=0)

    def test_orderings_match_paper(self, results):
        fine = results["fine-grained"]
        unknown = results["coarse-unknown"]
        known = results["coarse-known"]
        # Runtime: known < fine < unknown (fig 4's key finding).
        assert known.makespan_s < fine.makespan_s < unknown.makespan_s
        # Bandwidth: coarse configurations beat fine-grained.
        assert (
            fine.extras["mean_bandwidth_mbps"]
            < unknown.extras["mean_bandwidth_mbps"]
        )
        # CPU: the unknown-resources configuration wastes the node.
        assert unknown.accounting.utilization < 0.5
        assert known.accounting.utilization > 0.6

    def test_all_tasks_complete(self, results):
        assert all(r.tasks_completed == fig4.N_TASKS for r in results.values())

    def test_report_renders(self, results):
        out = fig4.report(results)
        assert "coarse-unknown" in out
        assert "paper vs measured" in out


class TestFig5:
    def test_staircase_and_chart(self):
        result = fig5.run(seed=0)
        assert result.tasks_completed == 76
        stairs = fig5.cycle_staircase(result)
        assert len(stairs) >= 2
        out = fig5.report(result)
        assert "supply" in out


class TestFig2Structure:
    """Full fig-2 sweeps are bench-scale; here we check the cheapest
    configuration (Config-99 never scales) plus harness structure."""

    def test_config99_never_scales_up(self):
        r = fig2.run_config(0.99, seed=0)
        t0, t1 = r.accountant.window()
        # Worker-pod count stays at the min-replica floor of 3.
        assert r.series("workers_connected").maximum(t0, t1) <= 3.0
        assert r.tasks_completed == fig2.N_TASKS

    def test_ideal_close_to_paper(self):
        r = fig2.run_ideal(seed=0)
        assert r.makespan_s == pytest.approx(fig2.PAPER["runtime_ideal_s"], rel=0.25)


class TestReportHelpers:
    def test_ascii_chart_renders_series(self):
        s = StepSeries("x")
        s.record(0.0, 1.0)
        s.record(50.0, 5.0)
        out = ascii_chart({"x": s}, 0.0, 100.0, width=40, height=6, title="T")
        assert "T" in out and "x" in out
        assert out.count("\n") >= 7

    def test_ascii_chart_too_many_series_rejected(self):
        series = {f"s{i}": StepSeries() for i in range(20)}
        with pytest.raises(ValueError):
            ascii_chart(series, 0.0, 1.0)

    def test_ascii_chart_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({"x": StepSeries()}, 5.0, 5.0)

    def test_kv_table_aligns(self):
        out = kv_table([("a", "1"), ("long-key", "2")], title="T")
        assert "long-key" in out

    def test_paper_vs_measured_ratios(self):
        out = paper_vs_measured([("metric", 100.0, 150.0)])
        assert "1.50" in out
