"""Tests for arrival streams and continuous-operation experiments."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import ClusterConfig
from repro.cluster.node import N1_STANDARD_4_RESERVED
from repro.experiments.continuous import run_continuous_hpa, run_continuous_hta
from repro.experiments.runner import StackConfig
from repro.makeflow.dag import WorkflowGraph
from repro.sim.rng import RngRegistry
from repro.workloads.arrivals import (
    WorkflowArrival,
    periodic_arrivals,
    poisson_arrivals,
    total_tasks,
)
from repro.workloads.synthetic import uniform_bag


def factory(i: int) -> WorkflowGraph:
    return WorkflowGraph(uniform_bag(8, execute_s=60.0, declared=False, category="job"))


def stack(seed=0):
    return StackConfig(
        cluster=ClusterConfig(
            machine_type=N1_STANDARD_4_RESERVED,
            min_nodes=2,
            max_nodes=6,
            node_reservation_mean_s=80.0,
            node_reservation_std_s=0.0,
        ),
        seed=seed,
    )


class TestArrivalGenerators:
    def test_periodic_spacing(self):
        arrivals = periodic_arrivals(factory, interval_s=100.0, count=4, start_s=50.0)
        assert [a.time_s for a in arrivals] == [50.0, 150.0, 250.0, 350.0]
        assert [a.index for a in arrivals] == [0, 1, 2, 3]

    def test_poisson_deterministic_per_seed(self):
        a = poisson_arrivals(factory, rng=RngRegistry(5), rate_per_hour=10, horizon_s=3600)
        b = poisson_arrivals(factory, rng=RngRegistry(5), rate_per_hour=10, horizon_s=3600)
        assert [x.time_s for x in a] == [x.time_s for x in b]

    def test_poisson_rate_roughly_respected(self):
        arrivals = poisson_arrivals(
            factory, rng=RngRegistry(1), rate_per_hour=60, horizon_s=10 * 3600
        )
        assert 450 < len(arrivals) < 750  # ~600 expected

    def test_total_tasks(self):
        arrivals = periodic_arrivals(factory, interval_s=10.0, count=3)
        assert total_tasks(arrivals) == 24

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            periodic_arrivals(factory, interval_s=0, count=1)
        with pytest.raises(ValueError):
            periodic_arrivals(factory, interval_s=1, count=0)
        with pytest.raises(ValueError):
            poisson_arrivals(factory, rng=RngRegistry(0), rate_per_hour=0, horizon_s=10)
        with pytest.raises(ValueError):
            WorkflowArrival(-1.0, factory(0), 0)


class TestContinuousHta:
    def test_stream_completes_all_workflows(self):
        arrivals = periodic_arrivals(factory, interval_s=200.0, count=4)
        res = run_continuous_hta(arrivals, stack_config=stack())
        assert res.workflows == 4
        assert res.result.tasks_completed == 32
        assert len(res.workflow_makespans) == 4
        assert res.throughput_tasks_per_hour > 0
        assert "workflows" in res.summary()

    def test_category_stats_carry_across_instances(self):
        """The first workflow pays the probe; later identical workflows
        reuse its category estimate and finish faster."""
        arrivals = periodic_arrivals(factory, interval_s=600.0, count=3)
        res = run_continuous_hta(arrivals, stack_config=stack())
        first, *rest = res.workflow_makespans
        assert all(m < first for m in rest)

    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError):
            run_continuous_hta([], stack_config=stack())


class TestContinuousHpa:
    def test_stream_completes(self):
        arrivals = periodic_arrivals(factory, interval_s=200.0, count=3)
        res = run_continuous_hpa(arrivals, target_cpu=0.2, stack_config=stack())
        assert res.result.tasks_completed == 24
        assert res.workflows == 3

    def test_hta_wastes_less_on_streams_too(self):
        def declared_factory(i):
            return WorkflowGraph(uniform_bag(8, execute_s=60.0, declared=True))

        arrivals = lambda: periodic_arrivals(declared_factory, interval_s=300.0, count=4)
        hta = run_continuous_hta(arrivals(), stack_config=stack())
        hpa = run_continuous_hpa(arrivals(), target_cpu=0.2, stack_config=stack())
        assert (
            hta.result.accounting.accumulated_waste_core_s
            <= hpa.result.accounting.accumulated_waste_core_s
        )
