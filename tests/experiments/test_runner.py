"""Tests for the experiment runner machinery."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import ClusterConfig
from repro.cluster.node import N1_STANDARD_4_RESERVED
from repro.cluster.resources import ResourceVector
from repro.experiments.runner import (
    ExperimentTimeout,
    StackConfig,
    ensure_graph,
    run_hpa_experiment,
    run_hta_experiment,
)
from repro.makeflow.dag import WorkflowGraph
from repro.workloads.synthetic import uniform_bag


def small_stack(**overrides):
    defaults = dict(
        cluster=ClusterConfig(
            machine_type=N1_STANDARD_4_RESERVED,
            min_nodes=2,
            max_nodes=4,
            node_reservation_mean_s=60.0,
            node_reservation_std_s=0.0,
        ),
        seed=1,
    )
    defaults.update(overrides)
    return StackConfig(**defaults)


class TestEnsureGraph:
    def test_accepts_task_list(self):
        g = ensure_graph(uniform_bag(3))
        assert isinstance(g, WorkflowGraph)
        assert len(g) == 3

    def test_passes_through_graph(self):
        g = WorkflowGraph(uniform_bag(3))
        assert ensure_graph(g) is g


class TestStackConfig:
    def test_default_worker_request_is_allocatable(self):
        cfg = small_stack()
        assert cfg.resolved_worker_request() == N1_STANDARD_4_RESERVED.allocatable

    def test_explicit_worker_request_wins(self):
        req = ResourceVector(1, 512, 512)
        cfg = small_stack(worker_request=req)
        assert cfg.resolved_worker_request() == req


class TestResults:
    def test_result_fields_populated(self):
        r = run_hta_experiment(
            uniform_bag(8, execute_s=20.0, declared=True), stack_config=small_stack()
        )
        assert r.name == "HTA"
        assert r.tasks_total == 8
        assert r.tasks_completed == 8
        assert r.makespan_s > 0
        assert r.nodes_peak >= 2
        assert r.workers_started >= 2
        assert "plans" in r.extras
        assert "HTA" in r.summary()

    def test_seed_override(self):
        r1 = run_hta_experiment(
            uniform_bag(8, execute_s=20.0, declared=True),
            stack_config=small_stack(),
            seed=99,
        )
        assert r1.tasks_completed == 8

    def test_hpa_result_name_from_target(self):
        r = run_hpa_experiment(
            uniform_bag(6, execute_s=20.0, declared=True),
            target_cpu=0.35,
            stack_config=small_stack(),
        )
        assert r.name == "HPA-35%"
        assert "scale_events" in r.extras

    def test_series_accessible(self):
        r = run_hta_experiment(
            uniform_bag(6, execute_s=20.0, declared=True), stack_config=small_stack()
        )
        for name in ("supply", "in_use", "shortage", "waste", "demand", "nodes"):
            assert r.series(name) is not None

    def test_timeout_raises(self):
        with pytest.raises(ExperimentTimeout):
            run_hta_experiment(
                uniform_bag(50, execute_s=1000.0, declared=True),
                stack_config=small_stack(max_sim_time_s=100.0),
            )
