"""Tests for the provisioner and the full HTA operator on a live stack."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.images import ContainerImage
from repro.cluster.node import N1_STANDARD_4_RESERVED
from repro.cluster.pod import PodPhase
from repro.cluster.resources import ResourceVector
from repro.hta.estimator import EstimatorConfig
from repro.hta.inittime import InitTimeTracker
from repro.hta.operator import HtaConfig, HtaOperator
from repro.hta.provisioner import WorkerProvisioner
from repro.makeflow.dag import WorkflowGraph
from repro.makeflow.manager import WorkflowManager
from repro.sim.rng import RngRegistry
from repro.wq.estimator import MonitorEstimator
from repro.wq.link import Link
from repro.wq.master import Master
from repro.wq.monitor import ResourceMonitor
from repro.wq.runtime import WorkerPodRuntime
from repro.wq.task import FileSpec, Task

FOOT = ResourceVector(1, 2500, 2000)


@pytest.fixture
def stack(engine):
    cluster = Cluster(
        engine,
        RngRegistry(11),
        ClusterConfig(
            machine_type=N1_STANDARD_4_RESERVED,
            min_nodes=2,
            max_nodes=8,
            node_reservation_mean_s=100.0,
            node_reservation_std_s=0.0,
            registry_jitter_cv=0.0,
        ),
    )
    link = Link(engine, 500.0)
    monitor = ResourceMonitor()
    master = Master(engine, link, estimator=MonitorEstimator(monitor), monitor=monitor)
    runtime = WorkerPodRuntime(engine, cluster.api, cluster.kubelets, master)
    provisioner = WorkerProvisioner(
        engine,
        cluster.api,
        runtime,
        image=ContainerImage("wq-worker", 100.0),
        worker_request=N1_STANDARD_4_RESERVED.allocatable,
    )
    tracker = InitTimeTracker(cluster.api, prior_s=110.0, selector_label="wq-worker")
    return cluster, master, runtime, provisioner, tracker


def bag(n, category="c", execute_s=30.0, declared=False):
    return [
        Task(
            category,
            execute_s=execute_s,
            footprint=FOOT,
            declared=FOOT if declared else None,
            inputs=(FileSpec(f"{category}.in.{i}", 1.0),),
            outputs=(FileSpec(f"{category}.out.{i}", 1.0),),
        )
        for i in range(n)
    ]


class TestProvisioner:
    def test_create_workers_makes_pods(self, engine, stack):
        cluster, master, runtime, provisioner, tracker = stack
        pods = provisioner.create_workers(2)
        assert len(pods) == 2
        assert all(p.meta.labels["app"] == "wq-worker" for p in pods)
        engine.run(until=30.0)
        assert master.stats().workers_connected == 2

    def test_pending_pods_listed(self, engine, stack):
        cluster, master, runtime, provisioner, tracker = stack
        provisioner.create_workers(4)  # only 2 nodes exist
        engine.run(until=20.0)
        assert len(provisioner.pending_pods()) == 2
        assert len(provisioner.running_pods()) == 2

    def test_drain_workers_prefers_idle(self, engine, stack):
        cluster, master, runtime, provisioner, tracker = stack
        provisioner.create_workers(2)
        engine.run(until=30.0)
        master.submit_many(bag(1, declared=True, execute_s=500.0))
        engine.run(until=40.0)
        drained = provisioner.drain_workers(1)
        assert len(drained) == 1
        assert not drained[0].runs  # the idle one, not the busy one

    def test_drained_pod_reaped(self, engine, stack):
        cluster, master, runtime, provisioner, tracker = stack
        provisioner.create_workers(1)
        engine.run(until=30.0)
        provisioner.drain_workers(1)
        engine.run(until=60.0)
        assert provisioner.my_pods() == []  # Succeeded pod deleted
        assert provisioner.pods_reaped == 1

    def test_cancel_pending_removes_newest(self, engine, stack):
        cluster, master, runtime, provisioner, tracker = stack
        provisioner.create_workers(4)
        engine.run(until=20.0)
        removed = provisioner.cancel_pending(10)
        assert removed == 2
        assert len(provisioner.pending_pods()) == 0

    def test_drain_all(self, engine, stack):
        cluster, master, runtime, provisioner, tracker = stack
        provisioner.create_workers(2)
        engine.run(until=30.0)
        provisioner.drain_all()
        engine.run(until=60.0)
        assert master.stats().workers_connected == 0


class TestOperator:
    def make_operator(self, engine, stack, **cfg):
        cluster, master, runtime, provisioner, tracker = stack
        defaults = dict(
            initial_workers=2,
            max_workers=8,
            min_workers=1,
            first_cycle_s=2.0,
            estimator=EstimatorConfig(default_cycle_s=10.0, min_cycle_s=2.0),
        )
        defaults.update(cfg)
        return HtaOperator(engine, master, provisioner, tracker, HtaConfig(**defaults))

    def run_workflow(self, engine, stack, operator, tasks, until=5000.0):
        graph = WorkflowGraph(tasks)
        manager = WorkflowManager(engine, graph, operator)
        manager.done_signal.add_waiter(lambda _m: operator.notify_no_more_jobs())
        operator.start()
        manager.start()
        engine.run(until=until)
        return manager

    def test_warmup_creates_initial_workers(self, engine, stack):
        cluster, master, runtime, provisioner, tracker = stack
        op = self.make_operator(engine, stack)
        op.start()
        engine.run(until=30.0)
        assert master.stats().workers_connected == 2

    def test_probe_gating_holds_unknown_category(self, engine, stack):
        cluster, master, runtime, provisioner, tracker = stack
        op = self.make_operator(engine, stack)
        op.start()
        for t in bag(10):
            op.submit(t)
        assert master.stats().waiting + master.stats().running <= 1
        assert op.held_count == 9
        assert op.held_cores() == pytest.approx(9.0)

    def test_declared_tasks_pass_through(self, engine, stack):
        cluster, master, runtime, provisioner, tracker = stack
        op = self.make_operator(engine, stack)
        op.start()
        for t in bag(5, declared=True):
            op.submit(t)
        assert op.held_count == 0
        assert master.stats().backlog == 5

    def test_probe_completion_flushes_held(self, engine, stack):
        cluster, master, runtime, provisioner, tracker = stack
        op = self.make_operator(engine, stack)
        op.start()
        for t in bag(10, execute_s=20.0):
            op.submit(t)
        engine.run(until=120.0)
        assert op.held_count == 0
        assert master.monitor.has_estimate("c")

    def test_workflow_runs_to_completion_and_cleans_up(self, engine, stack):
        cluster, master, runtime, provisioner, tracker = stack
        op = self.make_operator(engine, stack)
        manager = self.run_workflow(engine, stack, op, bag(12, execute_s=20.0))
        assert manager.done
        assert master.all_done
        # Clean-up: all workers drained, pods reaped.
        assert master.stats().workers_connected == 0
        assert provisioner.live_pods() == []
        assert op.done_signal.latched

    def test_scale_up_beyond_initial_pool(self, engine, stack):
        cluster, master, runtime, provisioner, tracker = stack
        op = self.make_operator(engine, stack)
        manager = self.run_workflow(
            engine, stack, op, bag(40, execute_s=100.0), until=3000.0
        )
        assert manager.done
        assert provisioner.pods_created > 2  # grew past the initial pool

    def test_multi_category_probes_run_concurrently(self, engine, stack):
        cluster, master, runtime, provisioner, tracker = stack
        op = self.make_operator(engine, stack)
        op.start()
        for t in bag(5, category="a") + bag(5, category="b"):
            op.submit(t)
        stats = master.stats()
        assert stats.backlog == 2  # one probe per category
        assert op.held_count == 8

    def test_plan_once_has_no_side_effects(self, engine, stack):
        cluster, master, runtime, provisioner, tracker = stack
        op = self.make_operator(engine, stack)
        op.start()
        engine.run(until=30.0)
        before = provisioner.pods_created
        op.plan_once()
        assert provisioner.pods_created == before

    def test_notify_without_work_cleans_up_immediately(self, engine, stack):
        cluster, master, runtime, provisioner, tracker = stack
        op = self.make_operator(engine, stack)
        op.start()
        engine.run(until=30.0)
        op.notify_no_more_jobs()
        engine.run(until=60.0)
        assert master.stats().workers_connected == 0

    def test_escalated_allocation_enters_planning(self, engine, stack):
        """A resource-exhaustion escalation recorded against the category
        must show up in the sizes Algorithm 1 plans with — even above a
        task's declared request."""
        cluster, master, runtime, provisioner, tracker = stack
        op = self.make_operator(engine, stack)
        task = bag(1, declared=True)[0]
        assert op._estimate_resources(task) == FOOT
        escalated = FOOT.scale(1.5)
        master.monitor.observe_exhaustion("c", escalated)
        estimate = op._estimate_resources(task)
        assert escalated.fits_in(estimate)

    def test_escalation_beyond_worker_falls_back_to_declared(self, engine, stack):
        cluster, master, runtime, provisioner, tracker = stack
        op = self.make_operator(engine, stack)
        task = bag(1, declared=True)[0]
        # An escalation no worker can hold must not poison the plan.
        master.monitor.observe_exhaustion("c", provisioner.worker_request.scale(2.0))
        assert op._estimate_resources(task) == FOOT
