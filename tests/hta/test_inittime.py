"""Unit tests for the init-time tracker (fig 9 / §V-B)."""

from __future__ import annotations

import pytest

from repro.cluster.api import KubeApiServer
from repro.cluster.images import ContainerImage
from repro.cluster.node import Node
from repro.cluster.pod import (
    Pod,
    PodSpec,
    REASON_FAILED_SCHEDULING,
    REASON_PULLED,
    REASON_PULLING,
)
from repro.cluster.resources import ResourceVector
from repro.hta.inittime import InitTimeTracker


@pytest.fixture
def api(engine):
    return KubeApiServer(engine)


def cold_start_pod(api, engine, name="p", created=0.0, ready=160.0, label=None):
    """Simulate the fig-9 event sequence on a pod through the API."""
    labels = {"app": label} if label else {}
    pod = Pod(
        name, PodSpec(ContainerImage("i", 1), ResourceVector(1, 1, 1), labels=labels)
    )
    node = api.try_get("Node", "n1")
    if node is None:
        node = Node("n1")
        node.ready = True
        api.create(node)

    def create():
        api.create(pod)
        pod.add_event(engine.now, REASON_FAILED_SCHEDULING, "Insufficient Resource")
        api.mark_modified(pod)

    def schedule():
        pod.mark_scheduled(engine.now, node)
        node.bind(pod)
        pod.add_event(engine.now, REASON_PULLING, "pulling")
        api.mark_modified(pod)

    def start():
        pod.add_event(engine.now, REASON_PULLED, "pulled")
        pod.mark_running(engine.now)
        api.mark_modified(pod)

    engine.call_at(created, create)
    engine.call_at(created + (ready - created) * 0.8, schedule)
    engine.call_at(ready, start)
    return pod


def warm_start_pod(api, engine, name="warm", created=0.0, ready=5.0):
    pod = Pod(name, PodSpec(ContainerImage("i", 1), ResourceVector(1, 1, 1)))
    node = api.try_get("Node", "n1")
    if node is None:
        node = Node("n1")
        node.ready = True
        api.create(node)

    def create():
        api.create(pod)

    def start():
        pod.mark_scheduled(engine.now, node)
        node.bind(pod)
        pod.mark_running(engine.now)
        api.mark_modified(pod)

    engine.call_at(created, create)
    engine.call_at(ready, start)
    return pod


class TestTracking:
    def test_prior_served_before_any_sample(self, api):
        tracker = InitTimeTracker(api, prior_s=160.0)
        assert tracker.current() == 160.0
        assert tracker.sample_count == 0

    def test_invalid_prior_rejected(self, api):
        with pytest.raises(ValueError):
            InitTimeTracker(api, prior_s=0.0)

    def test_cold_start_recorded(self, engine, api):
        tracker = InitTimeTracker(api, prior_s=999.0)
        cold_start_pod(api, engine, ready=160.0)
        engine.run()
        assert tracker.sample_count == 1
        assert tracker.current() == pytest.approx(160.0)

    def test_warm_start_ignored(self, engine, api):
        tracker = InitTimeTracker(api, prior_s=999.0)
        warm_start_pod(api, engine, ready=5.0)
        engine.run()
        assert tracker.sample_count == 0
        assert tracker.current() == 999.0

    def test_latest_sample_wins(self, engine, api):
        tracker = InitTimeTracker(api)
        cold_start_pod(api, engine, "p1", created=0.0, ready=150.0)
        cold_start_pod(api, engine, "p2", created=200.0, ready=380.0)
        engine.run()
        assert tracker.sample_count == 2
        assert tracker.current() == pytest.approx(180.0)

    def test_pod_counted_once(self, engine, api):
        tracker = InitTimeTracker(api)
        pod = cold_start_pod(api, engine, ready=160.0)
        engine.run()
        api.mark_modified(pod)  # later status churn
        engine.run()
        assert tracker.sample_count == 1

    def test_mean_over_samples(self, engine, api):
        tracker = InitTimeTracker(api)
        cold_start_pod(api, engine, "p1", created=0.0, ready=100.0)
        cold_start_pod(api, engine, "p2", created=500.0, ready=700.0)
        engine.run()
        assert tracker.mean() == pytest.approx(150.0)

    def test_selector_label_filters(self, engine, api):
        tracker = InitTimeTracker(api, selector_label="wq-worker")
        cold_start_pod(api, engine, "other", ready=160.0, label="something-else")
        engine.run()
        assert tracker.sample_count == 0
        cold_start_pod(api, engine, "mine", created=300.0, ready=460.0, label="wq-worker")
        engine.run()
        assert tracker.sample_count == 1


class TestRobustMode:
    def test_median_resists_one_pathological_sample(self, engine, api):
        tracker = InitTimeTracker(api, robust=True, window=5)
        cold_start_pod(api, engine, "p1", created=0.0, ready=150.0)
        cold_start_pod(api, engine, "p2", created=300.0, ready=460.0)
        # A pull-stalled cold start: 900 s instead of ~150 s.
        cold_start_pod(api, engine, "p3", created=600.0, ready=1500.0)
        engine.run()
        assert tracker.sample_count == 3
        # median(150, 160, 900) = 160 — the outlier does not poison the
        # planning horizon the way latest-sample (900) would.
        assert tracker.current() == pytest.approx(160.0)

    def test_window_limits_lookback(self, engine, api):
        tracker = InitTimeTracker(api, robust=True, window=2)
        cold_start_pod(api, engine, "p1", created=0.0, ready=100.0)
        cold_start_pod(api, engine, "p2", created=300.0, ready=500.0)
        cold_start_pod(api, engine, "p3", created=700.0, ready=920.0)
        engine.run()
        # Only the last two samples (200, 220) are considered.
        assert tracker.current() == pytest.approx(210.0)

    def test_default_mode_unchanged(self, engine, api):
        tracker = InitTimeTracker(api)  # the paper's latest-sample rule
        cold_start_pod(api, engine, "p1", created=0.0, ready=150.0)
        cold_start_pod(api, engine, "p2", created=600.0, ready=1500.0)
        engine.run()
        assert tracker.current() == pytest.approx(900.0)

    def test_prior_served_before_samples_in_robust_mode(self, api):
        tracker = InitTimeTracker(api, prior_s=160.0, robust=True)
        assert tracker.current() == 160.0

    def test_invalid_window_rejected(self, api):
        with pytest.raises(ValueError):
            InitTimeTracker(api, robust=True, window=0)

    def test_failed_pods_never_sampled(self, engine, api):
        """A boot-failed pod (never Running) must not contribute."""
        tracker = InitTimeTracker(api, robust=True)
        pod = Pod("dead", PodSpec(ContainerImage("i", 1), ResourceVector(1, 1, 1)))
        api.create(pod)
        pod.add_event(engine.now, REASON_FAILED_SCHEDULING, "Insufficient Resource")
        api.mark_modified(pod)
        engine.run()
        api.try_delete("Pod", "dead")  # timed out and reaped
        engine.run()
        assert tracker.sample_count == 0
        assert tracker.current() == tracker.prior_s
