"""Operator degraded mode: fail-safe resizing on broken feedback."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.images import ContainerImage
from repro.cluster.node import N1_STANDARD_4_RESERVED
from repro.cluster.pod import Pod, PodSpec
from repro.cluster.resources import ResourceVector
from repro.hta.inittime import InitTimeTracker
from repro.hta.operator import HtaConfig, HtaOperator
from repro.hta.provisioner import WorkerProvisioner
from repro.sim.rng import RngRegistry
from repro.wq.estimator import MonitorEstimator
from repro.wq.link import Link
from repro.wq.master import Master
from repro.wq.monitor import ResourceMonitor
from repro.wq.runtime import WorkerPodRuntime
from repro.wq.task import Task

FOOT = ResourceVector(1, 2500, 2000)


@pytest.fixture
def stack(engine):
    cluster = Cluster(
        engine,
        RngRegistry(11),
        ClusterConfig(
            machine_type=N1_STANDARD_4_RESERVED,
            min_nodes=2,
            max_nodes=8,
            node_reservation_mean_s=100.0,
            node_reservation_std_s=0.0,
            registry_jitter_cv=0.0,
        ),
    )
    monitor = ResourceMonitor()
    master = Master(
        engine, Link(engine, 500.0), estimator=MonitorEstimator(monitor), monitor=monitor
    )
    runtime = WorkerPodRuntime(engine, cluster.api, cluster.kubelets, master)
    provisioner = WorkerProvisioner(
        engine,
        cluster.api,
        runtime,
        image=ContainerImage("wq-worker", 100.0),
        worker_request=N1_STANDARD_4_RESERVED.allocatable,
    )
    tracker = InitTimeTracker(cluster.api, prior_s=110.0, selector_label="wq-worker")
    return cluster, master, runtime, provisioner, tracker


def make_operator(engine, stack, **overrides):
    cluster, master, runtime, provisioner, tracker = stack
    defaults = dict(initial_workers=2, min_workers=1, max_workers=8)
    defaults.update(overrides)
    return HtaOperator(engine, master, provisioner, tracker, HtaConfig(**defaults))


def bag(n, execute_s=30.0):
    return [
        Task("c", execute_s=execute_s, footprint=FOOT, declared=FOOT)
        for _ in range(n)
    ]


class TestDegradedDetection:
    def test_api_outage_degrades(self, engine, stack):
        cluster = stack[0]
        operator = make_operator(engine, stack)
        assert not operator._degraded()
        cluster.api.begin_outage()
        assert operator._degraded()
        cluster.api.end_outage()
        assert not operator._degraded()

    def test_master_outage_degrades(self, engine, stack):
        master = stack[1]
        operator = make_operator(engine, stack)
        master.pause()
        assert operator._degraded()
        master.resume()
        assert not operator._degraded()

    def test_stale_informer_degrades(self, engine, stack):
        cluster, _master, _runtime, _provisioner, tracker = stack
        operator = make_operator(engine, stack, staleness_bound=4)
        engine.run(until=1.0)
        cluster.api.begin_outage()
        for i in range(6):  # six missed store writes > bound of 4
            cluster.api.create(
                Pod(
                    f"stale-{i}",
                    PodSpec(ContainerImage("i", 1), ResourceVector(1, 1, 1)),
                )
            )
        engine.run(until=2.0)
        cluster.api.end_outage()
        assert tracker.informer.staleness() > 4
        assert operator._degraded()
        # A resync heals the cache and leaves degraded mode.
        tracker.informer.resync()
        assert not operator._degraded()

    def test_degraded_mode_can_be_disabled(self, engine, stack):
        cluster = stack[0]
        operator = make_operator(engine, stack, degraded_mode=False)
        cluster.api.begin_outage()
        assert operator._degraded()  # the signal is still visible...
        delay = operator._cycle()    # ...but the cycle ignores it
        assert operator.degraded_cycles == 0
        assert delay is not False


class TestDegradedCycle:
    def boot_workers(self, engine, stack, n=2):
        cluster, master, _runtime, provisioner, _tracker = stack
        provisioner.create_workers(n)
        engine.run(until=300.0)
        assert master.stats().workers_connected == n

    def test_no_scale_down_during_outage(self, engine, stack):
        cluster, master, _runtime, provisioner, _tracker = stack
        operator = make_operator(engine, stack)
        self.boot_workers(engine, stack)
        drains_before = provisioner.drains_requested
        cluster.api.begin_outage()
        # Empty queue, pool above min_workers: a healthy cycle would
        # drain — the degraded one must not.
        for _ in range(3):
            operator._cycle()
        assert operator.degraded_cycles == 3
        assert provisioner.drains_requested == drains_before
        assert not operator.plans  # Algorithm 1 never ran on stale data

    def test_pending_pods_not_cancelled_but_counted_frozen(self, engine, stack):
        cluster, master, _runtime, provisioner, _tracker = stack
        operator = make_operator(engine, stack)
        self.boot_workers(engine, stack)
        pods = provisioner.create_workers(2)  # still Pending
        assert len(pods) == 2
        cluster.api.begin_outage()
        operator._cycle()
        # Target clamps at the live pool; the surplus pending pods would
        # have been cancelled by a healthy plan — frozen instead.
        assert operator.scale_downs_frozen == 1
        assert len(provisioner.pending_pods()) == 2

    def test_target_covers_live_demand_during_outage(self, engine, stack):
        cluster, master, _runtime, provisioner, _tracker = stack
        operator = make_operator(engine, stack)
        self.boot_workers(engine, stack)
        for task in bag(6, execute_s=500.0):
            master.submit(task)
        engine.run(until=engine.now + 5.0)
        stats = master.stats()
        assert stats.waiting + stats.running == 6
        cluster.api.begin_outage()
        operator._cycle()
        assert operator.degraded_cycles == 1
        # The conservative queue-length target asked for one worker per
        # backlogged task; the API being down defers (not drops) them.
        assert provisioner.creations_deferred == 6 - 2
        cluster.api.end_outage()
        delay = operator._cycle()  # healthy again: Algorithm 1 plans
        assert operator.plans
        assert delay is not False

    def test_degraded_interval_holds_last_good_init(self, engine, stack):
        cluster, master, _runtime, provisioner, tracker = stack
        operator = make_operator(engine, stack)
        self.boot_workers(engine, stack)
        master.submit(bag(1, execute_s=5.0)[0])
        engine.run(until=engine.now + 60.0)
        healthy_delay = operator._cycle()  # records last-known-good init
        assert operator._last_good_init == tracker.current()
        cluster.api.begin_outage()
        degraded_delay = operator._cycle()
        assert degraded_delay == pytest.approx(
            max(operator.config.estimator.min_cycle_s, operator._last_good_init)
        )
        del healthy_delay

    def test_master_down_sizes_for_zero_backlog(self, engine, stack):
        cluster, master, _runtime, provisioner, _tracker = stack
        operator = make_operator(engine, stack)
        self.boot_workers(engine, stack)
        master.pause()
        created_before = provisioner.pods_created
        operator._cycle()
        # No queue signal at all: hold the pool, create nothing.
        assert operator.degraded_cycles == 1
        assert provisioner.pods_created == created_before
