"""Unit tests for Algorithm 1 (the resource estimation algorithm)."""

from __future__ import annotations

import pytest

from repro.cluster.resources import ResourceVector
from repro.hta.estimator import (
    EstimatorConfig,
    PendingWorker,
    ResourceEstimator,
    ScalePlan,
    SimulatedTask,
)

WORKER = ResourceVector(3, 14 * 1024, 90 * 1024)
TASK = ResourceVector(1, 2500, 2000)


def make_estimator(**overrides):
    return ResourceEstimator(WORKER, EstimatorConfig(**overrides))


def running(n, remaining_s):
    return [SimulatedTask(TASK, remaining_s) for _ in range(n)]


def waiting(n, runtime_s=60.0):
    return [SimulatedTask(TASK, runtime_s) for _ in range(n)]


class TestInputValidation:
    def test_non_positive_init_time_rejected(self):
        with pytest.raises(ValueError):
            make_estimator().estimate(0.0, [], [], 1, 0)

    def test_zero_worker_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResourceEstimator(ResourceVector.zero())

    def test_negative_remaining_rejected(self):
        with pytest.raises(ValueError):
            SimulatedTask(TASK, -1.0)


class TestHold:
    def test_empty_queue_no_idle_holds(self):
        est = make_estimator()
        # 3 busy workers, everything running, nothing waiting.
        plan = est.estimate(160.0, running(9, 300.0), [], 3, 0)
        assert plan.delta == 0
        assert plan.action == "hold"
        assert plan.next_action_s == est.config.default_cycle_s

    def test_queue_absorbed_by_completions_holds(self):
        est = make_estimator()
        # 9 running tasks finish at t=50 (< init time 160): the 9 waiting
        # tasks dispatch into the freed capacity during the cycle.
        plan = est.estimate(160.0, running(9, 50.0), waiting(9), 3, 0)
        assert plan.delta == 0


class TestScaleUp:
    def test_waiting_overflow_scales_up(self):
        est = make_estimator()
        # 3 workers fully busy past the cycle, 30 tasks waiting
        # → 30 - 0 dispatched → need ceil(30/3) = 10 workers.
        plan = est.estimate(160.0, running(9, 1000.0), waiting(30), 3, 0)
        assert plan.delta == 10
        assert plan.action == "scale-up"
        assert plan.next_action_s == 160.0

    def test_scale_up_accounts_for_in_cycle_completions(self):
        est = make_estimator()
        # 9 tasks finish at t=50, freeing 9 slots for 9 of the 12 waiting;
        # 3 remain → 1 worker.
        plan = est.estimate(160.0, running(9, 50.0), waiting(12), 3, 0)
        assert plan.delta == 1

    def test_max_workers_caps_scale_up(self):
        est = make_estimator()
        plan = est.estimate(160.0, running(9, 1000.0), waiting(300), 3, 0, max_workers=20)
        assert plan.delta == 17

    def test_pending_workers_reduce_request(self):
        est = make_estimator()
        pending = [PendingWorker(WORKER, 30.0) for _ in range(5)]
        # The 5 arriving workers host 15 of the 30 waiting tasks.
        plan = est.estimate(160.0, running(9, 1000.0), waiting(30), 3, 0, pending=pending)
        assert plan.delta == 5

    def test_pending_workers_count_against_quota(self):
        est = make_estimator()
        pending = [PendingWorker(WORKER, 30.0) for _ in range(5)]
        plan = est.estimate(
            160.0, running(9, 1000.0), waiting(300), 3, 0,
            pending=pending, max_workers=10,
        )
        assert plan.delta == 2  # 10 - 3 active - 5 pending

    def test_oversized_task_gets_one_dedicated_worker(self):
        est = make_estimator()
        monster = SimulatedTask(ResourceVector(64, 1024, 1024), 100.0)
        plan = est.estimate(160.0, [], [monster], 0, 0)
        assert plan.delta == 1

    def test_packing_mixes_task_sizes(self):
        est = make_estimator()
        big = SimulatedTask(ResourceVector(2, 1024, 1024), 100.0)
        small = SimulatedTask(ResourceVector(1, 1024, 1024), 100.0)
        # (2+1) fits one worker; 4 bigs + 4 smalls → 4 workers.
        plan = est.estimate(160.0, [], [big, small] * 4, 0, 0)
        assert plan.delta == 4


class TestScaleDown:
    def test_idle_workers_released_when_queue_empty(self):
        est = make_estimator()
        plan = est.estimate(160.0, running(3, 1000.0), [], 4, 3)
        # 4 workers, 3 tasks on one worker (est view: capacity-3 left);
        # 12-3=9 spare cores → 3 whole workers, 3 idle → release 3.
        assert plan.delta == -3
        assert plan.action == "scale-down"

    def test_scale_down_limited_by_idle_count(self):
        est = make_estimator()
        # Spare capacity equals 3 workers but only 1 worker is idle.
        plan = est.estimate(160.0, running(3, 1000.0), [], 4, 1)
        assert plan.delta == -1

    def test_scale_down_respects_min_workers(self):
        est = make_estimator()
        plan = est.estimate(160.0, [], [], 4, 4, min_workers=3)
        assert plan.delta == -1

    def test_literal_pseudocode_mode_never_scales_down_on_empty(self):
        est = make_estimator(scale_down_on_empty_queue=False)
        plan = est.estimate(160.0, [], [], 4, 4)
        assert plan.delta == 0

    def test_fragmented_capacity_with_waiting_tasks_scales_down_idle(self):
        est = make_estimator()
        # A waiting task too big for the spare fragments, spare >= one
        # worker, idle workers exist → pseudocode lines 22-24.
        big = SimulatedTask(ResourceVector(64, 1024, 1024), 100.0)
        plan = est.estimate(160.0, running(3, 1000.0), [big], 4, 3)
        assert plan.delta < 0
        # Next check when the longest-running task is predicted to end.
        assert plan.next_action_s == pytest.approx(1000.0)


class TestPlanMetadata:
    def test_waiting_after_reported(self):
        est = make_estimator()
        plan = est.estimate(160.0, running(9, 1000.0), waiting(5), 3, 0)
        assert plan.waiting_after == 5

    def test_min_cycle_floor_applied(self):
        est = make_estimator(min_cycle_s=5.0)
        plan = est.estimate(
            160.0, running(3, 0.5), [], 4, 3
        )
        assert plan.next_action_s >= 5.0

    def test_plan_action_labels(self):
        assert ScalePlan(1, 10).action == "scale-up"
        assert ScalePlan(-1, 10).action == "scale-down"
        assert ScalePlan(0, 10).action == "hold"


class TestDispatchHelper:
    def test_dispatch_is_first_fit_in_order(self):
        small = SimulatedTask(ResourceVector(1, 1000, 100), 10.0)
        big = SimulatedTask(ResourceVector(3, 1000, 100), 10.0)
        remaining, ava = ResourceEstimator._dispatch(
            [big, small], ResourceVector(1, 14 * 1024, 90 * 1024)
        )
        assert remaining == [big]
        assert ava.cores == pytest.approx(0.0)

    def test_dispatch_stops_at_zero_capacity(self):
        t = SimulatedTask(ResourceVector(1, 100, 100), 10.0)
        remaining, ava = ResourceEstimator._dispatch([t, t, t], ResourceVector.zero())
        assert len(remaining) == 3
