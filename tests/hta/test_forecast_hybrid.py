"""Tests for the hybrid HTA mode: forecast arrivals inside Algorithm 1."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import ClusterConfig
from repro.cluster.node import N1_STANDARD_4_RESERVED
from repro.cluster.resources import ResourceVector
from repro.experiments.continuous import run_continuous_hta
from repro.experiments.runner import StackConfig, run_hta_experiment
from repro.hta.estimator import (
    EstimatorConfig,
    ForecastArrival,
    ResourceEstimator,
    SimulatedTask,
)
from repro.hta.operator import HtaConfig
from repro.makeflow.dag import WorkflowGraph
from repro.workloads.arrivals import periodic_arrivals
from repro.workloads.synthetic import uniform_bag

WORKER = ResourceVector(3, 14 * 1024, 90 * 1024)
TASK = ResourceVector(1, 2500, 2000)


def stack(seed=0):
    return StackConfig(
        cluster=ClusterConfig(
            machine_type=N1_STANDARD_4_RESERVED,
            min_nodes=2,
            max_nodes=8,
            node_reservation_mean_s=80.0,
            node_reservation_std_s=0.0,
        ),
        seed=seed,
    )


class TestForecastArrivalValidation:
    def test_negative_eta_rejected(self):
        with pytest.raises(ValueError):
            ForecastArrival(SimulatedTask(TASK, 60.0), -1.0)


class TestEstimatorFutureArrivals:
    def test_empty_queue_with_predicted_arrivals_scales_up(self):
        est = ResourceEstimator(WORKER, EstimatorConfig())
        arrivals = [
            ForecastArrival(SimulatedTask(TASK, 300.0), eta_s=40.0)
            for _ in range(6)
        ]
        reactive = est.estimate(160.0, [], [], 0, 0)
        hybrid = est.estimate(160.0, [], [], 0, 0, future_arrivals=arrivals)
        # Reactive Algorithm 1 sees nothing; the hybrid plan provisions
        # for the predicted mid-cycle inflow.
        assert reactive.delta == 0
        assert hybrid.delta == 2  # 6 one-core tasks / 3-core workers

    def test_arrivals_past_the_cycle_are_ignored(self):
        est = ResourceEstimator(WORKER, EstimatorConfig())
        late = [ForecastArrival(SimulatedTask(TASK, 300.0), eta_s=1000.0)]
        plan = est.estimate(160.0, [], [], 0, 0, future_arrivals=late)
        assert plan.delta == 0

    def test_default_reactive_path_is_untouched(self):
        """`future_arrivals=()` must reproduce the paper's Algorithm 1
        bit-for-bit — compare against an explicit omission."""
        est = ResourceEstimator(WORKER, EstimatorConfig())
        running = [SimulatedTask(TASK, 50.0) for _ in range(9)]
        waiting = [SimulatedTask(TASK, 60.0) for _ in range(9)]
        a = est.estimate(160.0, running, waiting, 3, 0)
        b = est.estimate(160.0, running, waiting, 3, 0, future_arrivals=())
        assert (a.delta, a.action, a.next_action_s) == (b.delta, b.action, b.next_action_s)

    def test_predicted_arrivals_absorbed_by_completions_hold(self):
        est = ResourceEstimator(WORKER, EstimatorConfig())
        running = [SimulatedTask(TASK, 30.0) for _ in range(9)]
        arrivals = [
            ForecastArrival(SimulatedTask(TASK, 60.0), eta_s=50.0)
            for _ in range(9)
        ]
        # 9 cores free up at t=30, predicted inflow lands at t=50: the
        # forward simulation dispatches it into existing capacity.
        plan = est.estimate(160.0, running, [], 3, 0, future_arrivals=arrivals)
        assert plan.delta == 0


class TestHybridConfig:
    def test_hybrid_off_by_default(self):
        assert HtaConfig().forecast_arrivals is False


class TestHybridEndToEnd:
    def test_hybrid_completes_a_single_workload(self):
        r = run_hta_experiment(
            uniform_bag(18, execute_s=40.0, declared=True),
            stack_config=stack(),
            hta_config=HtaConfig(
                initial_workers=2, max_workers=8, forecast_arrivals=True
            ),
        )
        assert r.tasks_completed == 18

    def test_hybrid_is_deterministic(self):
        def once():
            r = run_continuous_hta(
                periodic_arrivals(
                    lambda i: WorkflowGraph(
                        uniform_bag(9, execute_s=40.0, declared=True)
                    ),
                    interval_s=300.0,
                    count=3,
                ),
                stack_config=stack(),
                hta_config=HtaConfig(
                    initial_workers=2, max_workers=8, forecast_arrivals=True
                ),
            )
            return (
                r.last_finish_s,
                tuple(r.workflow_makespans),
                r.result.accounting.accumulated_waste_core_s,
            )

        assert once() == once()
