"""Tests for the master StatefulSet deployment and failover (§V-A)."""

from __future__ import annotations

import pytest

from repro.cluster.chaos import ChaosInjector
from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.images import ContainerImage
from repro.cluster.node import N1_STANDARD_4_RESERVED
from repro.cluster.pod import PodPhase
from repro.cluster.resources import ResourceVector
from repro.hta.deployment import MasterDeployment
from repro.hta.provisioner import WorkerProvisioner
from repro.sim.rng import RngRegistry
from repro.wq.estimator import DeclaredResourceEstimator
from repro.wq.link import Link
from repro.wq.master import Master
from repro.wq.runtime import WorkerPodRuntime
from repro.wq.task import Task, TaskState

FOOT = ResourceVector(1, 1024, 512)


@pytest.fixture
def stack(engine):
    cluster = Cluster(
        engine,
        RngRegistry(33),
        ClusterConfig(
            machine_type=N1_STANDARD_4_RESERVED,
            min_nodes=3,
            max_nodes=6,
            node_reservation_mean_s=80.0,
            node_reservation_std_s=0.0,
            registry_jitter_cv=0.0,
        ),
    )
    link = Link(engine, 500.0)
    master = Master(
        engine, link, estimator=DeclaredResourceEstimator(), start_available=False
    )
    deployment = MasterDeployment(engine, cluster.api, master)
    runtime = WorkerPodRuntime(engine, cluster.api, cluster.kubelets, master)
    provisioner = WorkerProvisioner(
        engine,
        cluster.api,
        runtime,
        image=ContainerImage("wq-worker", 100.0),
        worker_request=N1_STANDARD_4_RESERVED.allocatable,
    )
    return cluster, master, deployment, provisioner


def bag(n, execute_s=40.0):
    return [Task("c", execute_s=execute_s, footprint=FOOT, declared=FOOT) for _ in range(n)]


class TestDeployment:
    def test_objects_created(self, engine, stack):
        cluster, master, deployment, _ = stack
        assert cluster.api.try_get("StatefulSet", master.name) is not None
        services = cluster.api.list("Service")
        types = {s.service_type for s in services}
        assert types == {"LoadBalancer", "ClusterIP"}

    def test_master_unavailable_until_pod_runs(self, engine, stack):
        cluster, master, deployment, _ = stack
        assert not master.available
        engine.run(until=30.0)
        assert master.available
        assert deployment.master_pod.phase is PodPhase.RUNNING

    def test_dispatch_waits_for_master_boot(self, engine, stack):
        cluster, master, deployment, provisioner = stack
        provisioner.create_workers(1)
        tasks = bag(2)
        master.submit_many(tasks)
        assert all(t.state is TaskState.WAITING for t in tasks)
        engine.run(until=200.0)
        assert all(t.state is TaskState.DONE for t in tasks)

    def test_describe_snapshot(self, engine, stack):
        cluster, master, deployment, _ = stack
        engine.run(until=30.0)
        d = deployment.describe()
        assert d["master_available"] is True
        assert d["pod"] == f"{master.name}-0"


class TestFailover:
    def test_master_node_crash_pauses_then_recovers(self, engine, stack):
        cluster, master, deployment, provisioner = stack
        provisioner.create_workers(2)
        tasks = bag(10, execute_s=60.0)
        master.submit_many(tasks)
        engine.run(until=40.0)
        assert master.available

        chaos = ChaosInjector(engine, cluster.api, RngRegistry(1))
        chaos.kill_node(deployment.master_pod.node)
        engine.run(until=45.0)
        assert not master.available
        assert master.outages == 1

        engine.run(until=3000.0)
        assert master.available
        assert all(t.state is TaskState.DONE for t in tasks)
        assert deployment.controller.pods_replaced >= 1

    def test_completions_buffered_during_outage(self, engine, stack):
        cluster, master, deployment, provisioner = stack
        provisioner.create_workers(1)
        tasks = bag(3, execute_s=25.0)
        master.submit_many(tasks)
        engine.run(until=20.0)  # tasks executing on the worker
        assert all(t.state is TaskState.RUNNING for t in tasks)
        # Take the master down without touching the worker's node.
        worker_node = provisioner.running_pods()[0].node
        master_node = deployment.master_pod.node
        assert worker_node is not master_node
        chaos = ChaosInjector(engine, cluster.api, RngRegistry(2))
        chaos.kill_node(master_node)
        # Execution finishes during the ~16 s outage (restart backoff +
        # reschedule + image pull), but results are held at the worker.
        engine.run(until=35.0)
        assert not master.available
        assert any(t.state is not TaskState.DONE for t in tasks)
        engine.run(until=3000.0)
        assert master.available
        assert master.outages == 1
        assert all(t.state is TaskState.DONE for t in tasks)

    def test_workflow_survives_master_restart_without_requeues(self, engine, stack):
        cluster, master, deployment, provisioner = stack
        provisioner.create_workers(2)
        tasks = bag(8, execute_s=50.0)
        master.submit_many(tasks)
        engine.run(until=40.0)
        chaos = ChaosInjector(engine, cluster.api, RngRegistry(3))
        chaos.kill_node(deployment.master_pod.node)
        engine.run(until=4000.0)
        assert all(t.state is TaskState.DONE for t in tasks)
        # Tasks on surviving workers were never requeued: the persistent
        # volume + sticky identity preserved the queue (§V-A's point).
        worker_tasks_requeued = master.tasks_requeued
        assert worker_tasks_requeued <= len(tasks)  # only co-located losses
