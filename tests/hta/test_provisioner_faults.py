"""Tests for defensive provisioning: pending timeouts and the breaker."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.images import ContainerImage
from repro.cluster.node import N1_STANDARD_4_RESERVED
from repro.hta.provisioner import ProvisionerFaultConfig, WorkerProvisioner
from repro.sim.rng import RngRegistry
from repro.wq.link import Link
from repro.wq.master import Master
from repro.wq.runtime import WorkerPodRuntime

#: Timeout comfortably above a healthy cold start (~110 s here), so
#: only genuinely stuck pods are reaped — mirroring the real default's
#: 420 s vs ~157 s relationship.
FAULTS = ProvisionerFaultConfig(
    pending_timeout_s=120.0,
    check_period_s=10.0,
    retry_backoff_base_s=5.0,
    retry_backoff_max_s=40.0,
    breaker_threshold=2,
    breaker_cooldown_s=300.0,
)


@pytest.fixture
def stack(engine):
    """Two healthy base nodes; every *new* reservation fails to boot."""
    cluster = Cluster(
        engine,
        RngRegistry(21),
        ClusterConfig(
            machine_type=N1_STANDARD_4_RESERVED,
            min_nodes=2,
            max_nodes=8,
            node_reservation_mean_s=100.0,
            node_reservation_std_s=0.0,
            registry_jitter_cv=0.0,
            node_boot_failure_prob=1.0,
        ),
    )
    master = Master(engine, Link(engine, 500.0))
    runtime = WorkerPodRuntime(engine, cluster.api, cluster.kubelets, master)
    provisioner = WorkerProvisioner(
        engine,
        cluster.api,
        runtime,
        image=ContainerImage("wq-worker", 100.0),
        worker_request=N1_STANDARD_4_RESERVED.allocatable,
        fault_config=FAULTS,
    )
    return cluster, provisioner


class TestPendingTimeouts:
    def test_stuck_pods_deleted_and_retried(self, engine, stack):
        cluster, provisioner = stack
        provisioner.create_workers(4)  # 2 run on base nodes, 2 stuck
        engine.run(until=160.0)
        assert provisioner.pods_timed_out == 2
        assert provisioner.retries_scheduled == 2
        assert provisioner.pending_pods() == []  # stuck pods deleted
        assert len(provisioner.running_pods()) == 2  # healthy ones live

    def test_validation(self):
        with pytest.raises(ValueError):
            ProvisionerFaultConfig(pending_timeout_s=0.0)
        with pytest.raises(ValueError):
            ProvisionerFaultConfig(breaker_threshold=0)
        with pytest.raises(ValueError):
            ProvisionerFaultConfig(breaker_cooldown_s=-1.0)

    def test_no_fault_config_never_times_out(self, engine):
        cluster = Cluster(
            engine,
            RngRegistry(22),
            ClusterConfig(
                machine_type=N1_STANDARD_4_RESERVED,
                min_nodes=1,
                max_nodes=4,
                node_reservation_mean_s=100.0,
                node_reservation_std_s=0.0,
                registry_jitter_cv=0.0,
                node_boot_failure_prob=1.0,
            ),
        )
        master = Master(engine, Link(engine, 500.0))
        runtime = WorkerPodRuntime(engine, cluster.api, cluster.kubelets, master)
        provisioner = WorkerProvisioner(
            engine,
            cluster.api,
            runtime,
            image=ContainerImage("wq-worker", 100.0),
            worker_request=N1_STANDARD_4_RESERVED.allocatable,
        )
        provisioner.create_workers(3)
        engine.run(until=500.0)
        assert provisioner.pods_timed_out == 0
        assert len(provisioner.pending_pods()) == 2  # stuck but untouched


class TestCircuitBreaker:
    def test_opens_under_sustained_boot_failures(self, engine, stack):
        cluster, provisioner = stack
        provisioner.create_workers(4)
        engine.run(until=160.0)
        # Two simultaneous timeouts cross breaker_threshold=2.
        assert provisioner.breaker_state == "open"
        assert provisioner.breaker_opens == 1
        # While open, scale-up requests are suppressed wholesale.
        assert provisioner.create_workers(3) == []
        assert provisioner.creations_suppressed >= 3

    def test_half_open_admits_single_probe(self, engine, stack):
        cluster, provisioner = stack
        provisioner.create_workers(4)
        engine.run(until=160.0)
        assert provisioner.breaker_state == "open"
        engine.run(until=160.0 + FAULTS.breaker_cooldown_s)
        created = provisioner.create_workers(3)
        assert len(created) == 1  # the probe
        assert provisioner.breaker_state == "half_open"
        assert provisioner.create_workers(2) == []  # probe outstanding

    def test_failed_probe_reopens(self, engine, stack):
        cluster, provisioner = stack
        provisioner.create_workers(4)
        engine.run(until=160.0)
        engine.run(until=160.0 + FAULTS.breaker_cooldown_s)
        provisioner.create_workers(1)  # probe; boot failures still on
        engine.run(until=engine.now + FAULTS.pending_timeout_s + 20.0)
        assert provisioner.breaker_state == "open"
        assert provisioner.breaker_opens == 2

    def test_closes_when_provisioning_recovers(self, engine, stack):
        cluster, provisioner = stack
        provisioner.create_workers(4)
        engine.run(until=160.0)
        assert provisioner.breaker_state == "open"
        # The substrate heals: reservations boot again.
        cluster.cloud.boot_failure_prob = 0.0
        engine.run(until=160.0 + FAULTS.breaker_cooldown_s)
        probe = provisioner.create_workers(1)
        assert len(probe) == 1
        # Reservation (~100 s) + pull + start: the probe reaches Running,
        # which closes the breaker.
        engine.run(until=engine.now + 150.0)
        assert provisioner.breaker_state == "closed"
        assert provisioner.breaker_closes == 1
        # Full-rate scale-up is restored.
        assert len(provisioner.create_workers(2)) == 2

    def test_check_loop_stops_cleanly(self, engine, stack):
        cluster, provisioner = stack
        provisioner.stop()
        assert provisioner._check_loop is None
        provisioner.stop()  # idempotent


class TestStopGuard:
    """A pending-timeout retry can fire after the clean-up drain; the
    provisioner must refuse to create workers once stopped (seed-33298
    soak regression: the late pod spawned a worker no drain visited)."""

    def test_create_after_stop_is_refused(self, engine, stack):
        cluster, provisioner = stack
        provisioner.stop()
        assert provisioner.create_workers(3) == []
        assert provisioner.creations_after_stop == 3
        assert provisioner.pods_created == 0
        assert not cluster.api.list("Pod")

    def test_scheduled_retry_firing_after_stop_creates_nothing(
        self, engine, stack
    ):
        cluster, provisioner = stack
        provisioner.create_workers(1)
        # Let the pod go stuck-pending, be reaped, and a retry scheduled
        # (every reservation in this fixture fails to boot).
        engine.run(until=200.0)
        provisioner.stop()
        before = provisioner.pods_created
        engine.run(until=600.0)  # any in-flight retry fires in here
        assert provisioner.pods_created == before
