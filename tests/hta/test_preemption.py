"""Tests for HTA's preemptible-capacity machinery: survival tracking,
spot split policy, Algorithm 1's spot discount, and the responder."""

from __future__ import annotations

import pytest

from repro.cluster.cloud import PreemptiblePoolConfig
from repro.cluster.cluster import ClusterConfig
from repro.cluster.resources import ResourceVector
from repro.experiments.runner import (
    ExperimentSpec,
    FaultProfile,
    StackConfig,
    run_experiment,
)
from repro.hta.estimator import EstimatorConfig, ResourceEstimator, SimulatedTask
from repro.hta.preemption import SurvivalTracker
from repro.hta.provisioner import SpotPolicy
from repro.metrics.cost import CostModel
from repro.sim.rng import RngRegistry
from repro.workloads.synthetic import uniform_bag

WORKER = ResourceVector(3, 14 * 1024, 90 * 1024)
TASK = ResourceVector(1, 2500, 2000)


class TestSurvivalTracker:
    def test_fresh_tracker_trusts_the_pool(self):
        assert SurvivalTracker().survival_rate() == 1.0

    def test_laplace_smoothed_rate(self):
        t = SurvivalTracker()
        for _ in range(4):
            t.record_start()
        t.record_preempted()
        # (S - P + 1) / (S + 1) = (4 - 1 + 1) / 5
        assert t.survival_rate() == pytest.approx(0.8)

    def test_rate_clipped_at_floor(self):
        t = SurvivalTracker()
        for _ in range(5):
            t.record_start()
        for _ in range(10):
            t.record_preempted()
        assert t.survival_rate() == SurvivalTracker.MIN_RATE

    def test_rate_never_exceeds_one(self):
        t = SurvivalTracker()
        t.record_start()
        assert t.survival_rate() == 1.0


class TestSpotPolicy:
    def test_split_halves_a_batch(self):
        assert SpotPolicy(0.5).split(4) == (2, 2)

    def test_split_of_nothing(self):
        assert SpotPolicy(0.5).split(0) == (0, 0)

    def test_all_on_demand(self):
        assert SpotPolicy(0.0).split(5) == (0, 5)

    def test_all_spot(self):
        assert SpotPolicy(1.0).split(5) == (5, 0)

    def test_fraction_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            SpotPolicy(1.5)
        with pytest.raises(ValueError):
            SpotPolicy(-0.1)

    def test_from_cost_model_tracks_discount(self):
        policy = SpotPolicy.from_cost_model(CostModel(), "n1-standard-4")
        # GCE-era spot is ~79% cheaper; the share caps at 0.8.
        discount = CostModel().spot_discount("n1-standard-4")
        assert policy.spot_fraction == pytest.approx(min(0.8, discount))

    def test_from_cost_model_no_discount_means_no_spot(self):
        model = CostModel(pool_prices={"spot": 0.19})  # same as on-demand
        policy = SpotPolicy.from_cost_model(model, "n1-standard-4")
        assert policy.spot_fraction == 0.0


class TestEstimatorSpotDiscount:
    def make(self, **overrides):
        return ResourceEstimator(WORKER, EstimatorConfig(**overrides))

    def waiting(self, n, runtime_s=60.0):
        return [SimulatedTask(TASK, runtime_s) for _ in range(n)]

    def test_trusted_spot_plans_like_on_demand(self):
        est = self.make()
        base = est.estimate(160.0, [], self.waiting(12), 2, 2)
        spotted = est.estimate(
            160.0, [], self.waiting(12), 2, 2, spot_workers=2, spot_survival=1.0
        )
        assert spotted.delta == base.delta

    def test_distrusted_spot_buys_extra_capacity(self):
        est = self.make()
        base = est.estimate(160.0, [], self.waiting(12), 4, 4)
        discounted = est.estimate(
            160.0, [], self.waiting(12), 4, 4, spot_workers=4, spot_survival=0.25
        )
        # Counting each spot worker as a quarter worker shrinks the
        # supply term, so the plan asks for strictly more new workers.
        assert discounted.delta > base.delta

    def test_spot_workers_bounds_validated(self):
        est = self.make()
        with pytest.raises(ValueError):
            est.estimate(160.0, [], [], 1, 0, spot_workers=2)
        with pytest.raises(ValueError):
            est.estimate(160.0, [], [], 1, 0, spot_workers=1, spot_survival=1.5)


class TestResponderEndToEnd:
    """The responder under a real preemption wave, via run_experiment."""

    @pytest.fixture(scope="class")
    def result(self):
        stack = StackConfig(
            cluster=ClusterConfig(
                max_nodes=10,
                preemptible=PreemptiblePoolConfig(max_nodes=5, grace_period_s=30.0),
            ),
            seed=7,
            faults=FaultProfile(
                preemption_wave_at_s=260.0, preemption_wave_size=3, max_retries=10
            ),
        )
        workload = uniform_bag(
            60, execute_s=120.0, rng=RngRegistry(9001), runtime_cv=0.3
        )
        return run_experiment(
            ExperimentSpec(
                workload=workload,
                policy="hta",
                name="responder-e2e",
                stack=stack,
                options={"spot_policy": SpotPolicy(0.5), "spot_aware": True},
            )
        )

    def test_wave_fired_and_was_consumed(self, result):
        assert result.extras["preemptions"] >= 1
        assert result.extras["workers_evacuated"] >= 1

    def test_all_tasks_complete_despite_wave(self, result):
        assert result.tasks_completed == 60

    def test_survival_rate_reflects_reclamation(self, result):
        rate = result.extras["spot_survival_rate"]
        assert SurvivalTracker.MIN_RATE <= rate < 1.0

    def test_mixed_cost_bills_spot_cheaper(self, result):
        mixed = CostModel().cost_of_mixed(result, "n1-standard-4")
        assert mixed.spot.node_hours > 0
        assert mixed.spot.hourly_price < mixed.on_demand.hourly_price
        assert mixed.total_usd > 0
