"""Unit tests for the workload generators."""

from __future__ import annotations

import pytest

from repro.cluster.resources import ResourceVector
from repro.makeflow.dag import WorkflowGraph
from repro.sim.rng import RngRegistry
from repro.workloads.blast import (
    ALIGN_FOOTPRINT,
    BLAST_DB,
    blast_multistage,
    blast_parallel,
    blast_sizing_study,
)
from repro.workloads.iobound import IO_CPU_FRACTION, iobound_parallel
from repro.workloads.synthetic import (
    fan_in_out,
    multi_category_mix,
    staged_pipeline,
    uniform_bag,
)


class TestBlastParallel:
    def test_default_shape(self):
        tasks = blast_parallel()
        assert len(tasks) == 200
        assert all(t.category == "align" for t in tasks)
        assert all(t.declared == ALIGN_FOOTPRINT for t in tasks)

    def test_shared_cacheable_input(self):
        tasks = blast_parallel(5)
        for t in tasks:
            assert BLAST_DB in t.inputs
        assert BLAST_DB.cacheable
        assert BLAST_DB.size_mb == 1400.0

    def test_outputs_600kb(self):
        t = blast_parallel(1)[0]
        assert t.output_bytes_mb() == pytest.approx(0.6)

    def test_undeclared_variant(self):
        tasks = blast_parallel(3, declared=False)
        assert all(t.declared is None for t in tasks)

    def test_runtime_jitter_reproducible(self):
        a = blast_parallel(10, rng=RngRegistry(1), runtime_cv=0.1)
        b = blast_parallel(10, rng=RngRegistry(1), runtime_cv=0.1)
        assert [t.execute_s for t in a] == [t.execute_s for t in b]
        assert len({t.execute_s for t in a}) > 1

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            blast_parallel(0)

    def test_sizing_study_defaults_unknown(self):
        tasks = blast_sizing_study()
        assert len(tasks) == 100
        assert all(t.declared is None for t in tasks)


class TestBlastMultistage:
    def test_paper_stage_sizes(self):
        g = blast_multistage()
        counts = g.category_counts()
        assert counts == {"align1": 200, "reduce": 34, "align2": 164}
        assert len(g) == 398

    def test_is_a_three_level_dag(self):
        g = blast_multistage((20, 4, 16))
        assert g.depth() == 3

    def test_stage2_depends_on_stage1(self):
        g = blast_multistage((10, 2, 4))
        reduce_tasks = [t for t in g.tasks if t.category == "reduce"]
        for t in reduce_tasks:
            assert g.dependencies[t.id]  # non-empty

    def test_every_stage1_output_consumed(self):
        g = blast_multistage((10, 2, 4))
        consumed = {f.name for t in g.tasks for f in t.inputs}
        stage1_outputs = {
            f.name for t in g.tasks if t.category == "align1" for f in t.outputs
        }
        assert stage1_outputs <= consumed

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            blast_multistage((0, 1, 1))

    def test_declared_variant(self):
        g = blast_multistage((4, 2, 2), declared=True)
        assert all(t.declared is not None for t in g.tasks)


class TestIoBound:
    def test_low_cpu_fraction(self):
        tasks = iobound_parallel(10)
        assert all(t.cpu_fraction == IO_CPU_FRACTION for t in tasks)
        # One task on a 4-core pod: usage if allocated whole pod
        assert IO_CPU_FRACTION < 0.2  # "rarely over 20%"

    def test_paper_count(self):
        assert len(iobound_parallel()) == 200

    def test_tiny_io_files(self):
        t = iobound_parallel(1)[0]
        assert t.input_bytes_mb() < 1.0
        assert t.output_bytes_mb() < 1.0

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            iobound_parallel(0)


class TestSynthetic:
    def test_uniform_bag_shape(self):
        tasks = uniform_bag(7, execute_s=5.0)
        assert len(tasks) == 7
        assert all(t.execute_s == 5.0 for t in tasks)

    def test_uniform_bag_forms_valid_graph(self):
        g = WorkflowGraph(uniform_bag(5))
        assert len(g.roots()) == 5

    def test_multi_category_mix(self):
        foot = ResourceVector(1, 512, 128)
        tasks = multi_category_mix([("a", 3, 10.0, foot), ("b", 2, 20.0, foot)])
        assert sum(1 for t in tasks if t.category == "a") == 3
        assert sum(1 for t in tasks if t.category == "b") == 2

    def test_staged_pipeline_depth_equals_stage_count(self):
        g = staged_pipeline([4, 2, 4, 1])
        assert g.depth() == 4

    def test_staged_pipeline_invalid(self):
        with pytest.raises(ValueError):
            staged_pipeline([])
        with pytest.raises(ValueError):
            staged_pipeline([3, 0])

    def test_fan_in_out_structure(self):
        g = fan_in_out(5)
        assert len(g) == 11
        assert g.depth() == 3
        counts = g.category_counts()
        assert counts == {"map": 5, "reduce": 1, "finalize": 5}

    def test_fan_in_out_reducer_is_bottleneck(self):
        g = fan_in_out(4)
        reducer = next(t for t in g.tasks if t.category == "reduce")
        assert len(g.dependencies[reducer.id]) == 4
        assert len(g.dependents[reducer.id]) == 4
