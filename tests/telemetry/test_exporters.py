"""Tests for the telemetry exporters: JSONL, Chrome trace, Prometheus."""

from __future__ import annotations

import io
import json

import pytest

from repro.telemetry.events import TraceEvent, Tracer
from repro.telemetry.exporters import (
    chrome_trace,
    events_to_jsonl,
    parse_prometheus_text,
    prometheus_text,
    read_events_jsonl,
    read_runs_jsonl,
    write_chrome_trace,
    write_events_jsonl,
)
from repro.telemetry.metrics import MetricsRegistry


def sample_events():
    clock = [0.0]
    tracer = Tracer(lambda: clock[0])
    tracer.emit("wq", "task.submit", task_id="t1")
    clock[0] = 1.5
    tracer.emit("wq", "task.dispatch", "bwa", worker="w1", attempt=1)
    clock[0] = 60.0
    tracer.emit("hta", "decision", "normal", delta=3, waiting=7)
    return tracer.events


class TestJsonlRoundTrip:
    def test_lossless_round_trip(self, tmp_path):
        events = sample_events()
        path = tmp_path / "trace.jsonl"
        with open(path, "w", encoding="utf-8") as fp:
            write_events_jsonl(events, fp)
        back = read_events_jsonl(str(path))
        assert back == events

    def test_run_tag_round_trip(self):
        events = sample_events()
        buf = io.StringIO()
        write_events_jsonl(events, buf, run="HTA")
        pairs = read_runs_jsonl(io.StringIO(buf.getvalue()))
        assert [run for run, _ in pairs] == ["HTA"] * len(events)
        assert [e for _, e in pairs] == events

    def test_each_line_is_json(self):
        for line in events_to_jsonl(sample_events()).splitlines():
            d = json.loads(line)
            assert {"time", "layer", "name"} <= set(d)


class TestChromeTrace:
    def test_valid_json_file(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace([("run-a", sample_events())], str(path))
        doc = json.load(open(path))
        assert isinstance(doc["traceEvents"], list)
        assert doc["traceEvents"]

    def test_timestamps_microseconds_and_monotonic(self):
        doc = chrome_trace([("run-a", sample_events())])
        instants = [e for e in doc["traceEvents"] if e.get("ph") == "i"]
        ts = [e["ts"] for e in instants]
        assert ts == sorted(ts)
        assert ts[-1] == pytest.approx(60.0 * 1e6)

    def test_runs_become_distinct_pids(self):
        doc = chrome_trace([("a", sample_events()), ("b", sample_events())])
        pids = {e["pid"] for e in doc["traceEvents"] if e.get("ph") == "i"}
        assert len(pids) == 2


class TestPrometheusText:
    def registry(self):
        reg = MetricsRegistry()
        c = reg.counter("tasks_total", "Tasks by state")
        c.inc(3, state="done")
        c.inc(1, state="failed")
        g = reg.gauge("pool_size", "Current worker pool")
        g.set(7)
        h = reg.histogram("wait_seconds", "Queue wait")
        h.observe(0.3)
        h.observe(12.0)
        return reg

    def test_text_parses_and_round_trips_values(self):
        text = prometheus_text(self.registry())
        parsed = parse_prometheus_text(text)
        assert parsed[("tasks_total", (("state", "done"),))] == 3.0
        assert parsed[("tasks_total", (("state", "failed"),))] == 1.0
        assert parsed[("pool_size", ())] == 7.0
        assert parsed[("wait_seconds_count", ())] == 2.0
        assert parsed[("wait_seconds_sum", ())] == pytest.approx(12.3)

    def test_histogram_buckets_cumulative(self):
        text = prometheus_text(self.registry())
        parsed = parse_prometheus_text(text)
        buckets = [
            (labels, v)
            for (name, labels), v in parsed.items()
            if name == "wait_seconds_bucket"
        ]
        values = [v for _, v in buckets]
        assert values == sorted(values)
        assert parsed[("wait_seconds_bucket", (("le", "+Inf"),))] == 2.0

    def test_help_and_type_lines_present(self):
        text = prometheus_text(self.registry())
        assert "# HELP tasks_total Tasks by state" in text
        assert "# TYPE tasks_total counter" in text
        assert "# TYPE wait_seconds histogram" in text


class TestTraceEventDict:
    def test_to_from_dict(self):
        ev = TraceEvent(1.0, "wq", "task.submit", "bwa", {"task_id": "t9"})
        assert TraceEvent.from_dict(ev.to_dict()) == ev
