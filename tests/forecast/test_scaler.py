"""Tests for the predictive scaler's control law."""

from __future__ import annotations

import pytest

from repro.forecast.scaler import PredictiveScaler, PredictiveScalerConfig
from repro.sim.engine import Engine
from repro.wq.worker import WorkerState


class StubMaster:
    def __init__(self):
        self.tasks_submitted = 0
        self._backlog = 0
        self.waiting_cores = 0.0
        self.in_use_cores = 0.0

    def stats(self):
        class S:
            pass

        s = S()
        s.backlog = self._backlog
        return s

    def cores_waiting(self):
        return self.waiting_cores

    def cores_in_use(self):
        return self.in_use_cores


class StubWorker:
    def __init__(self, state=WorkerState.READY):
        self.state = state


class StubRuntime:
    def __init__(self):
        self.workers = []

    def live_workers(self):
        return list(self.workers)


class StubRequest:
    def __init__(self, cores=3.0):
        self.cores = cores


class StubProvisioner:
    """Pending pods become READY workers only when the test says so."""

    def __init__(self, cores_per_worker=3.0):
        self.runtime = StubRuntime()
        self.worker_request = StubRequest(cores_per_worker)
        self.pending = 0
        self.created = 0
        self.cancelled = 0
        self.drained = 0

    def pending_pods(self):
        return [object()] * self.pending

    def create_workers(self, n):
        self.pending += n
        self.created += n

    def cancel_pending(self, n):
        took = min(n, self.pending)
        self.pending -= took
        self.cancelled += took
        return took

    def drain_workers(self, n):
        took = min(n, len(self.runtime.workers))
        for w in self.runtime.workers[:took]:
            w.state = WorkerState.DRAINING
        self.drained += took
        return took

    def connect_pending(self):
        """Test hook: all pending pods become READY workers."""
        for _ in range(self.pending):
            self.runtime.workers.append(StubWorker())
        self.pending = 0


class FixedInit:
    def __init__(self, value=160.0):
        self.value = value

    def current(self):
        return self.value


class ScriptedSelector:
    """predict() reads from a horizon → value table (0.0 default)."""

    def __init__(self):
        self.table = {}
        self.observed = []

    def observe(self, t, y):
        self.observed.append((t, y))

    def predict(self, horizon_s):
        return self.table.get(round(horizon_s), 0.0)


def make_scaler(engine, config=None, selector=None, master=None):
    master = master if master is not None else StubMaster()
    provisioner = StubProvisioner()
    scaler = PredictiveScaler(
        engine,
        master,
        provisioner,
        FixedInit(160.0),
        config=config or PredictiveScalerConfig(min_workers=1, max_workers=10),
        selector=selector if selector is not None else ScriptedSelector(),
    )
    return scaler, provisioner, master


class TestConfigValidation:
    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            PredictiveScalerConfig(min_workers=-1)
        with pytest.raises(ValueError):
            PredictiveScalerConfig(min_workers=5, max_workers=2)
        with pytest.raises(ValueError):
            PredictiveScalerConfig(sample_interval_s=0)
        with pytest.raises(ValueError):
            PredictiveScalerConfig(decision_interval_s=0)
        with pytest.raises(ValueError):
            PredictiveScalerConfig(horizon_margin=0)
        with pytest.raises(ValueError):
            PredictiveScalerConfig(horizon_samples=0)
        with pytest.raises(ValueError):
            PredictiveScalerConfig(headroom=0)
        with pytest.raises(ValueError):
            PredictiveScalerConfig(scale_down_patience=0)


class TestControlLaw:
    def test_bootstraps_to_min_workers(self):
        engine = Engine()
        config = PredictiveScalerConfig(min_workers=3, max_workers=10)
        _, provisioner, _ = make_scaler(engine, config)
        assert provisioner.created == 3

    def test_samples_feed_the_selector(self):
        engine = Engine()
        selector = ScriptedSelector()
        make_scaler(engine, selector=selector)
        engine.run(until=31.0)
        assert len(selector.observed) >= 2  # 15 s cadence

    def test_visible_demand_floors_the_forecast(self):
        engine = Engine()
        scaler, _, master = make_scaler(engine)
        master.waiting_cores = 9.0  # forecast says 0, reality says 9
        assert scaler.desired_workers() == 3  # ceil(9 / 3 cores)

    def test_forecast_scales_up_ahead_of_demand(self):
        engine = Engine()
        selector = ScriptedSelector()
        selector.table[160] = 30.0  # burst predicted one init cycle out
        scaler, provisioner, _ = make_scaler(engine, selector=selector)
        engine.run(until=31.0)  # first decision at t=30
        assert provisioner.created == 1 + 10 - 1  # min bootstrap, then to max
        assert scaler.last_desired == 10

    def test_envelope_uses_max_over_horizon_not_endpoint(self):
        # The burst is predicted *mid*-horizon: a point forecast at the
        # horizon would miss it and the scaler would never pre-provision.
        engine = Engine()
        selector = ScriptedSelector()
        selector.table[80] = 30.0  # spike at horizon/2 only
        scaler, _, _ = make_scaler(engine)
        scaler.selector = selector
        assert scaler.desired_workers() == 10

    def test_clamped_to_max_workers(self):
        engine = Engine()
        selector = ScriptedSelector()
        selector.table[160] = 1e6
        scaler, _, _ = make_scaler(engine, selector=selector)
        assert scaler.desired_workers() == 10

    def test_scale_down_waits_for_patience(self):
        engine = Engine()
        selector = ScriptedSelector()
        selector.table[160] = 30.0
        config = PredictiveScalerConfig(
            min_workers=1, max_workers=10, scale_down_patience=2
        )
        scaler, provisioner, _ = make_scaler(engine, config, selector)
        engine.run(until=31.0)
        provisioner.connect_pending()
        assert len(provisioner.runtime.workers) == 10
        # Forecast collapses: first below-decision must NOT shrink ...
        selector.table.clear()
        engine.run(until=61.0)
        assert provisioner.drained == 0
        # ... the second one drains (cancel-pending first, none left).
        engine.run(until=91.0)
        assert provisioner.drained == 9
        assert scaler.pool_size() == 1

    def test_scale_down_cancels_pending_before_draining(self):
        engine = Engine()
        selector = ScriptedSelector()
        selector.table[160] = 30.0
        config = PredictiveScalerConfig(
            min_workers=1, max_workers=10, scale_down_patience=1
        )
        scaler, provisioner, _ = make_scaler(engine, config, selector)
        engine.run(until=31.0)  # scaled up; pods still pending
        selector.table.clear()
        engine.run(until=61.0)
        assert provisioner.cancelled == 9  # free: pods never became workers
        assert provisioner.drained == 0
        assert scaler.pool_size() == 1

    def test_scale_up_resets_patience_streak(self):
        engine = Engine()
        selector = ScriptedSelector()
        selector.table[160] = 30.0
        config = PredictiveScalerConfig(
            min_workers=1, max_workers=10, scale_down_patience=2
        )
        scaler, provisioner, _ = make_scaler(engine, config, selector)
        engine.run(until=31.0)
        provisioner.connect_pending()
        selector.table.clear()
        engine.run(until=61.0)  # below ×1
        selector.table[160] = 30.0
        engine.run(until=91.0)  # recovered: streak must reset
        selector.table.clear()
        engine.run(until=121.0)  # below ×1 again — still inside patience
        assert provisioner.drained == 0

    def test_stop_halts_decisions(self):
        engine = Engine()
        scaler, _, _ = make_scaler(engine)
        engine.run(until=31.0)
        n = scaler.decisions
        scaler.stop()
        engine.run(until=301.0)
        assert scaler.decisions == n
