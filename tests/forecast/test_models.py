"""Tests for the forecaster pool: naive, EWMA, Holt, AR least-squares."""

from __future__ import annotations

import math

import pytest

from repro.forecast.models import (
    ArLeastSquaresForecaster,
    EwmaForecaster,
    ForecastErrorTracker,
    Forecaster,
    HoltForecaster,
    NaiveForecaster,
    default_forecasters,
)


def feed(model, points):
    for t, y in points:
        model.observe(t, y)


def ramp(n, dt=10.0, start=0.0, slope=0.5):
    return [(i * dt, start + slope * i * dt) for i in range(n)]


class TestErrorTracker:
    def test_unscored_is_infinite(self):
        tr = ForecastErrorTracker()
        assert tr.mae == math.inf
        assert tr.smape == math.inf

    def test_mae_and_smape(self):
        tr = ForecastErrorTracker()
        tr.record(predicted=4.0, actual=6.0)
        assert tr.mae == pytest.approx(2.0)
        assert tr.smape == pytest.approx(2.0 / 5.0)

    def test_window_bounds_history(self):
        tr = ForecastErrorTracker(window=2)
        tr.record(0.0, 100.0)  # error 100 — must age out
        tr.record(1.0, 1.0)
        tr.record(1.0, 1.0)
        assert tr.mae == pytest.approx(0.0)
        assert tr.scored == 3

    def test_zero_denominator_smape(self):
        tr = ForecastErrorTracker()
        tr.record(0.0, 0.0)
        assert tr.smape == 0.0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            ForecastErrorTracker(window=0)


class TestProtocolAndBase:
    def test_all_defaults_satisfy_protocol(self):
        for model in default_forecasters():
            assert isinstance(model, Forecaster)

    def test_predict_before_observation_is_zero(self):
        for model in default_forecasters():
            assert model.predict(100.0) == 0.0

    def test_negative_horizon_rejected(self):
        model = NaiveForecaster()
        model.observe(0.0, 1.0)
        with pytest.raises(ValueError):
            model.predict(-1.0)

    def test_non_finite_observation_rejected(self):
        for bad in (math.nan, math.inf):
            with pytest.raises(ValueError):
                NaiveForecaster().observe(0.0, bad)

    def test_time_regression_rejected(self):
        model = NaiveForecaster()
        model.observe(10.0, 1.0)
        with pytest.raises(ValueError):
            model.observe(9.0, 1.0)

    def test_observe_scores_previous_prediction(self):
        model = NaiveForecaster()
        model.observe(0.0, 10.0)
        assert model.rolling_mae() == math.inf  # nothing scored yet
        model.observe(10.0, 4.0)  # naive predicted 10 → error 6
        assert model.rolling_mae() == pytest.approx(6.0)

    def test_constant_series_drives_error_to_zero(self):
        for model in default_forecasters():
            feed(model, [(i * 10.0, 5.0) for i in range(12)])
            assert model.rolling_mae() == pytest.approx(0.0), model.name

    def test_prediction_clamped_non_negative(self):
        # A steep downward ramp extrapolates below zero; the base clamps.
        model = HoltForecaster()
        feed(model, [(i * 10.0, 100.0 - 10.0 * i) for i in range(8)])
        assert model.predict(1000.0) == 0.0


class TestNaive:
    def test_carries_last_value(self):
        model = NaiveForecaster()
        feed(model, [(0.0, 3.0), (10.0, 8.0)])
        assert model.predict(0.0) == 8.0
        assert model.predict(500.0) == 8.0


class TestEwma:
    def test_invalid_alpha(self):
        for alpha in (0.0, 1.5):
            with pytest.raises(ValueError):
                EwmaForecaster(alpha=alpha)

    def test_first_sample_seeds_level(self):
        model = EwmaForecaster(alpha=0.3)
        model.observe(0.0, 10.0)
        assert model.predict(100.0) == 10.0

    def test_level_is_exponential_blend(self):
        model = EwmaForecaster(alpha=0.5)
        feed(model, [(0.0, 0.0), (10.0, 8.0)])
        assert model.predict(10.0) == pytest.approx(4.0)

    def test_lags_a_ramp_below_naive(self):
        model = EwmaForecaster(alpha=0.3)
        feed(model, ramp(20))
        last = ramp(20)[-1][1]
        assert model.predict(0.0) < last  # the low-pass lags by design


class TestHolt:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            HoltForecaster(alpha=0.0)
        with pytest.raises(ValueError):
            HoltForecaster(beta=1.5)

    def test_linear_ramp_extrapolates_exactly(self):
        model = HoltForecaster(alpha=0.5, beta=0.3)
        points = ramp(40, dt=10.0, slope=0.05)
        feed(model, points)
        level = model.level
        horizon = 60.0
        assert model.predict(horizon) == pytest.approx(level + 0.05 * horizon, rel=1e-6)
        # And the level itself has locked onto the ramp.
        assert level == pytest.approx(points[-1][1], rel=0.05)

    def test_irregular_spacing_keeps_per_second_trend(self):
        # Same ramp, jittered cadence: slope is per-second, not per-sample.
        model = HoltForecaster()
        times = [0.0, 7.0, 19.0, 25.0, 41.0, 50.0, 66.0, 70.0, 88.0, 100.0]
        feed(model, [(t, 2.0 * t) for t in times])
        assert model.trend_per_s == pytest.approx(2.0, rel=0.1)


class TestArLeastSquares:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ArLeastSquaresForecaster(order=0)
        with pytest.raises(ValueError):
            ArLeastSquaresForecaster(window=5, order=8)
        with pytest.raises(ValueError):
            ArLeastSquaresForecaster(guard_factor=0.0)

    def test_falls_back_to_last_value_until_enough_samples(self):
        model = ArLeastSquaresForecaster(window=16, order=4)
        feed(model, [(0.0, 1.0), (10.0, 2.0), (20.0, 9.0)])  # < order+2
        assert model.predict(30.0) == 9.0

    def test_learns_a_linear_ramp(self):
        model = ArLeastSquaresForecaster(window=32, order=4)
        feed(model, ramp(32, dt=10.0, slope=0.5))
        last = ramp(32, dt=10.0, slope=0.5)[-1][1]
        assert model.predict(20.0) == pytest.approx(last + 0.5 * 20.0, rel=0.05)

    def test_period_spanning_order_learns_a_cycle(self):
        """The capability the scaler exploits: with order ≥ period/step the
        AR model predicts a recurring burst *before* it arrives."""
        period, step = 8, 1.0
        wave = [30.0 if i % period == 0 else 0.0 for i in range(64)]
        model = ArLeastSquaresForecaster(window=48, order=8)
        feed(model, [(i * step, y) for i, y in enumerate(wave)])
        # Last observation is i=63; the next burst (i=64) is 1 step out,
        # after which the series goes quiet again.
        assert model.predict(1.0) == pytest.approx(30.0, abs=1.0)
        assert model.predict(4.0) == pytest.approx(0.0, abs=1.0)
        assert model.rolling_mae() < 0.5

    def test_guard_clamps_unstable_extrapolation(self):
        model = ArLeastSquaresForecaster(window=16, order=2, guard_factor=2.0)
        feed(model, [(i * 1.0, float(2**i)) for i in range(10)])  # explosive
        assert model.predict(100.0) <= 2.0 * float(2**9)

    def test_refit_is_lazy_per_observation(self):
        model = ArLeastSquaresForecaster(window=16, order=2)
        feed(model, ramp(10))
        model.predict(5.0)
        fit_marker = model._fit_at_count
        model.predict(50.0)  # second predict, same history: no refit
        assert model._fit_at_count == fit_marker


class TestDeterminism:
    def test_identical_histories_identical_predictions(self):
        points = [(i * 15.0, (i * 37) % 11 * 1.5) for i in range(40)]
        for make in (
            NaiveForecaster,
            EwmaForecaster,
            HoltForecaster,
            ArLeastSquaresForecaster,
        ):
            a, b = make(), make()
            feed(a, points)
            feed(b, points)
            for horizon in (0.0, 15.0, 160.0, 1000.0):
                assert a.predict(horizon) == b.predict(horizon), make.__name__
            assert a.rolling_mae() == b.rolling_mae()
