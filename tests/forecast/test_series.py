"""Tests for the bounded demand time series and the master sampler."""

from __future__ import annotations

import math

import pytest

from repro.forecast.series import DemandSample, DemandSeries, MasterDemandSampler
from repro.sim.engine import Engine


class TestDemandSeries:
    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            DemandSeries(max_samples=0)

    def test_rejects_non_finite_samples(self):
        s = DemandSeries()
        with pytest.raises(ValueError):
            s.observe(math.nan, 1.0)
        with pytest.raises(ValueError):
            s.observe(1.0, math.inf)

    def test_rejects_time_regression(self):
        s = DemandSeries()
        s.observe(10.0, 1.0)
        with pytest.raises(ValueError):
            s.observe(9.0, 2.0)

    def test_same_instant_supersedes(self):
        s = DemandSeries()
        s.observe(5.0, 1.0)
        s.observe(5.0, 7.0)
        assert len(s) == 1
        assert s.latest == (5.0, 7.0)

    def test_value_at_is_right_continuous_step(self):
        s = DemandSeries()
        s.observe(10.0, 2.0)
        s.observe(20.0, 5.0)
        assert s.value_at(9.9) == 0.0  # before retained history
        assert s.value_at(10.0) == 2.0
        assert s.value_at(19.9) == 2.0
        assert s.value_at(20.0) == 5.0
        assert s.value_at(1e9) == 5.0

    def test_integrate_exact_over_steps(self):
        s = DemandSeries()
        s.observe(0.0, 2.0)
        s.observe(10.0, 4.0)
        # [0,10) at 2.0 plus [10,15] at 4.0.
        assert s.integrate(0.0, 15.0) == pytest.approx(2.0 * 10 + 4.0 * 5)
        assert s.mean_over(0.0, 10.0) == pytest.approx(2.0)

    def test_integrate_additive_and_degenerate(self):
        s = DemandSeries()
        s.observe(0.0, 3.0)
        s.observe(7.0, 1.0)
        whole = s.integrate(0.0, 20.0)
        split = s.integrate(0.0, 7.0) + s.integrate(7.0, 20.0)
        assert whole == pytest.approx(split)
        assert s.integrate(5.0, 5.0) == 0.0
        assert s.integrate(6.0, 4.0) == 0.0

    def test_bound_drops_oldest_and_counts(self):
        s = DemandSeries(max_samples=3)
        for i in range(5):
            s.observe(float(i), float(i))
        assert len(s) == 3
        assert s.dropped == 2
        assert s.times == [2.0, 3.0, 4.0]
        # Windows reaching before the retained history are clamped:
        # values before t=2 read as 0.
        assert s.value_at(1.0) == 0.0
        assert s.integrate(0.0, 3.0) == pytest.approx(2.0 * 1.0)

    def test_tail(self):
        s = DemandSeries()
        for i in range(4):
            s.observe(float(i), float(i * 10))
        assert s.tail(2) == [(2.0, 20.0), (3.0, 30.0)]
        assert s.tail(0) == []
        assert s.tail(99) == s.samples()


class StubMaster:
    """Just enough of the Master surface for the sampler."""

    def __init__(self):
        self.tasks_submitted = 0
        self._backlog = 0
        self._waiting_cores = 0.0
        self._in_use_cores = 0.0

    def stats(self):
        class S:
            pass

        s = S()
        s.backlog = self._backlog
        return s

    def cores_waiting(self):
        return self._waiting_cores

    def cores_in_use(self):
        return self._in_use_cores


class TestMasterDemandSampler:
    def test_rejects_bad_interval(self):
        engine = Engine()
        with pytest.raises(ValueError):
            MasterDemandSampler(engine, StubMaster(), interval_s=0)

    def test_probes_fill_all_three_series(self):
        engine = Engine()
        master = StubMaster()
        sampler = MasterDemandSampler(engine, master, interval_s=10.0)
        master.tasks_submitted = 5
        master._backlog = 5
        master._waiting_cores = 5.0
        engine.run(until=25.0)
        # Probes at t=0 (before the submissions above registered... the
        # first periodic fire) — start_after=0 fires at t=0 with the
        # post-construction state, then t=10, t=20.
        assert len(sampler.arrival_rate) == 3
        assert len(sampler.backlog) == 3
        assert len(sampler.demand_cores) == 3
        assert sampler.backlog.latest == (20.0, 5.0)
        assert sampler.demand_cores.latest == (20.0, 5.0)

    def test_arrival_rate_is_delta_over_interval(self):
        engine = Engine()
        master = StubMaster()
        sampler = MasterDemandSampler(engine, master, interval_s=10.0)
        engine.run(until=1.0)  # t=0 probe with zero submissions
        master.tasks_submitted = 20
        engine.run(until=11.0)  # t=10 probe sees +20 over 10 s
        assert sampler.arrival_rate.latest == (10.0, 2.0)
        engine.run(until=21.0)  # no new arrivals: rate back to 0
        assert sampler.arrival_rate.latest == (20.0, 0.0)

    def test_listeners_receive_every_sample(self):
        engine = Engine()
        master = StubMaster()
        sampler = MasterDemandSampler(engine, master, interval_s=10.0)
        seen = []
        sampler.on_sample(seen.append)
        engine.run(until=25.0)
        assert [s.time for s in seen] == [0.0, 10.0, 20.0]
        assert all(isinstance(s, DemandSample) for s in seen)

    def test_stop_halts_probing(self):
        engine = Engine()
        sampler = MasterDemandSampler(engine, StubMaster(), interval_s=10.0)
        engine.run(until=11.0)
        sampler.stop()
        engine.run(until=100.0)
        assert len(sampler.backlog) == 2
