"""Tests for the online model selector."""

from __future__ import annotations

import math

import pytest

from repro.forecast.models import NaiveForecaster, default_forecasters
from repro.forecast.selector import OnlineModelSelector


class FixedErrorModel:
    """Protocol-shaped stub with a settable rolling error."""

    def __init__(self, name, error, prediction=1.0):
        self.name = name
        self._error = error
        self.prediction = prediction
        self.observed = []

    def observe(self, t, y):
        self.observed.append((t, y))

    def predict(self, horizon_s):
        return self.prediction

    def rolling_mae(self):
        return self._error

    def rolling_smape(self):
        return self._error


class TestConstruction:
    def test_defaults_to_standard_pool(self):
        selector = OnlineModelSelector()
        assert selector.names == [f.name for f in default_forecasters()]

    def test_rejects_empty_pool(self):
        with pytest.raises(ValueError):
            OnlineModelSelector([])

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError):
            OnlineModelSelector([NaiveForecaster(), NaiveForecaster()])

    def test_rejects_unknown_metric(self):
        with pytest.raises(ValueError):
            OnlineModelSelector(metric="rmse")


class TestRouting:
    def test_cold_start_breaks_tie_by_registration_order(self):
        a = FixedErrorModel("a", math.inf)
        b = FixedErrorModel("b", math.inf)
        assert OnlineModelSelector([a, b]).best() is a

    def test_routes_to_lowest_error(self):
        a = FixedErrorModel("a", 5.0, prediction=10.0)
        b = FixedErrorModel("b", 1.0, prediction=20.0)
        selector = OnlineModelSelector([a, b])
        assert selector.best() is b
        assert selector.predict(60.0) == 20.0
        assert selector.selections == {"a": 0, "b": 1}

    def test_routing_adapts_when_errors_cross(self):
        a = FixedErrorModel("a", 1.0, prediction=10.0)
        b = FixedErrorModel("b", 2.0, prediction=20.0)
        selector = OnlineModelSelector([a, b])
        assert selector.predict(0.0) == 10.0
        a._error, b._error = 3.0, 0.5
        assert selector.predict(0.0) == 20.0

    def test_observe_fans_out_to_every_model(self):
        models = [FixedErrorModel(n, 1.0) for n in ("a", "b", "c")]
        selector = OnlineModelSelector(models)
        selector.observe(10.0, 4.0)
        assert all(m.observed == [(10.0, 4.0)] for m in models)

    def test_smape_metric_used_when_asked(self):
        a = FixedErrorModel("a", 1.0)
        a.rolling_smape = lambda: 9.0
        b = FixedErrorModel("b", 5.0)
        b.rolling_smape = lambda: 0.1
        assert OnlineModelSelector([a, b], metric="smape").best() is b

    def test_errors_reports_whole_pool(self):
        a = FixedErrorModel("a", 1.5)
        b = FixedErrorModel("b", math.inf)
        assert OnlineModelSelector([a, b]).errors() == {"a": 1.5, "b": math.inf}


class TestWithRealModels:
    def test_constant_series_ties_to_first_registered(self):
        selector = OnlineModelSelector()
        for i in range(10):
            selector.observe(i * 10.0, 5.0)
        # Every model tracks a constant perfectly; the stable tie-break
        # picks registration order — the naive model.
        assert selector.best().name == "naive"

    def test_ramp_prefers_a_trend_model(self):
        selector = OnlineModelSelector()
        for i in range(40):
            selector.observe(i * 10.0, 2.0 * i)
        assert selector.best().name in ("holt", "ar-ls")
