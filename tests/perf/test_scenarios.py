"""The scenario ladder: shape, naming, and spec materialization."""

from __future__ import annotations

import pytest

from repro.experiments.runner import POLICIES
from repro.perf.scenarios import (
    LADDER,
    POLICY_KEYS,
    RUNGS,
    SMOKE_SCENARIO,
    largest_scenario,
    scenario_by_name,
)


def test_ladder_covers_every_rung_and_policy():
    # 3 rungs x 3 policies, plus the sharded top rung.
    assert len(LADDER) == len(RUNGS) * len(POLICY_KEYS) + 1 == 10
    names = {s.name for s in LADDER}
    assert len(names) == len(LADDER)
    for tag, n_tasks, max_nodes, _ in RUNGS:
        for policy in POLICY_KEYS:
            s = scenario_by_name(f"ladder-{tag}-{policy}")
            assert (s.n_tasks, s.max_nodes, s.policy) == (
                n_tasks, max_nodes, policy,
            )


def test_sharded_rung_mirrors_the_top_rung():
    sharded = scenario_by_name("ladder-100k-10k-sharded4")
    top = largest_scenario()
    assert sharded.policy == "sharded"
    assert sharded.options == {"shards": 4}
    assert (sharded.n_tasks, sharded.max_nodes, sharded.execute_s) == (
        top.n_tasks, top.max_nodes, top.execute_s,
    )


def test_policies_resolve_through_the_experiment_registry():
    for key in POLICY_KEYS:
        assert key in POLICIES


def test_smoke_scenario_is_the_smallest_rung():
    smoke = scenario_by_name(SMOKE_SCENARIO)
    assert smoke.n_tasks == min(s.n_tasks for s in LADDER)
    assert smoke.policy == "hta"


def test_largest_scenario_is_the_issue_target():
    top = largest_scenario()
    assert top.name == "ladder-100k-10k-hta"
    assert top.n_tasks == 100_000 and top.max_nodes == 10_000


def test_unknown_scenario_raises_with_known_names():
    with pytest.raises(KeyError, match="ladder-1k-100-hta"):
        scenario_by_name("nope")


def test_build_spec_is_deterministic_and_self_contained():
    scenario = scenario_by_name(SMOKE_SCENARIO)
    spec_a, spec_b = scenario.build_spec(), scenario.build_spec()
    assert len(spec_a.workload) == scenario.n_tasks
    assert spec_a.stack.cluster.max_nodes == scenario.max_nodes
    assert spec_a.stack.seed == spec_b.stack.seed == scenario.seed
    # Workload generation is seeded: same runtimes in the same order.
    assert [t.execute_s for t in spec_a.workload] == [
        t.execute_s for t in spec_b.workload
    ]
