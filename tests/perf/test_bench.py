"""The bench driver: measurement, report emission, and wall-boxing."""

from __future__ import annotations

import json

import pytest

from repro.perf.bench import BenchConfig, BenchReport, run_bench, run_scenario
from repro.perf.scenarios import PerfScenario

#: Small enough to finish in a couple of wall seconds, big enough to
#: exercise scale-up, dispatch, and drain.
TINY = PerfScenario(
    name="tiny-perf",
    n_tasks=40,
    max_nodes=10,
    policy="hta",
    execute_s=10.0,
)


@pytest.fixture(scope="module")
def tiny_run():
    return run_scenario(TINY, max_wall_s=120.0)


class TestRunScenario:
    def test_completes_and_measures(self, tiny_run):
        m = tiny_run
        assert m.scenario == "tiny-perf" and m.policy == "hta"
        assert m.completed
        assert m.tasks_completed == m.tasks_total == 40
        assert m.events > 0 and m.sim_s > 0 and m.wall_s > 0
        assert m.peak_rss_mb > 0

    def test_derived_rates(self, tiny_run):
        m = tiny_run
        assert m.sim_per_wall == pytest.approx(m.sim_s / m.wall_s)
        assert m.events_per_sec == pytest.approx(m.events / m.wall_s)
        row = m.row()
        assert row["sim_per_wall"] == round(m.sim_per_wall, 2)
        assert row["completed"] is True

    def test_fixed_seed_event_count_is_reproducible(self, tiny_run):
        """The determinism signal the gate relies on."""
        again = run_scenario(TINY, max_wall_s=120.0)
        assert again.events == tiny_run.events
        assert again.sim_s == tiny_run.sim_s

    def test_wall_box_yields_partial_run(self):
        m = run_scenario(TINY, max_wall_s=0.0)
        assert not m.completed
        assert m.tasks_completed < m.tasks_total


class TestRunBench:
    def test_emits_report_and_per_run_results(self, tmp_path):
        config = BenchConfig(
            scenarios=[TINY], out_dir=tmp_path / "out", max_wall_s=120.0
        )
        report = run_bench(config, echo=lambda *_: None)
        assert [m.scenario for m in report.runs] == ["tiny-perf"]
        per_run = tmp_path / "out" / "tiny-perf" / "result.json"
        assert json.loads(per_run.read_text())["scenario"] == "tiny-perf"
        top = json.loads((tmp_path / "out" / "BENCH_PERF.json").read_text())
        assert top["schema"] == 1
        assert "tiny-perf" in top["runs"]
        assert top["runs"]["tiny-perf"]["events"] == report.runs[0].events

    def test_speedup_vs_reference(self, tmp_path):
        reference = tmp_path / "reference.json"
        reference.write_text(
            json.dumps({"runs": {"tiny-perf": {"sim_per_wall": 1.0}}})
        )
        config = BenchConfig(
            scenarios=[TINY],
            out_dir=tmp_path / "out",
            max_wall_s=120.0,
            reference_path=reference,
        )
        report = run_bench(config, echo=lambda *_: None)
        ratio = report.speedup_vs_reference["tiny-perf"]
        assert ratio == pytest.approx(report.runs[0].sim_per_wall)
        assert f"{ratio:.1f}x" in report.table()


def test_table_renders_without_runs():
    assert "scenario" in BenchReport(runs=[]).table()
