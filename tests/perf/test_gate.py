"""Unit tests for the perf regression gate."""

from __future__ import annotations

import json

from repro.perf.gate import DEFAULT_TOLERANCE, check_regression, load_report


def _row(sim_per_wall=10.0, events=5000, completed=True):
    return {
        "sim_per_wall": sim_per_wall,
        "events": events,
        "completed": completed,
    }


class TestThroughput:
    def test_equal_reports_pass(self):
        runs = {"a": _row(), "b": _row(20.0)}
        result = check_regression(runs, runs)
        assert result.ok
        assert result.compared == ["a", "b"]

    def test_small_slowdown_within_tolerance_passes(self):
        current = {"a": _row(sim_per_wall=8.5)}  # -15% < 20% tolerance
        assert check_regression(current, {"a": _row(10.0)}).ok

    def test_slowdown_beyond_tolerance_fails(self):
        current = {"a": _row(sim_per_wall=7.0)}  # -30%
        result = check_regression(current, {"a": _row(10.0)})
        assert not result.ok
        assert "sim_per_wall" in result.failures[0]

    def test_speedup_passes(self):
        assert check_regression({"a": _row(99.0)}, {"a": _row(10.0)}).ok

    def test_custom_tolerance(self):
        current = {"a": _row(sim_per_wall=8.5)}
        assert not check_regression(
            current, {"a": _row(10.0)}, tolerance=0.10
        ).ok
        assert DEFAULT_TOLERANCE == 0.20


class TestDeterminism:
    def test_event_drift_on_completed_runs_fails(self):
        current = {"a": _row(events=5001)}
        result = check_regression(current, {"a": _row(events=5000)})
        assert not result.ok
        assert "drifted" in result.failures[0]

    def test_event_drift_ignored_for_partial_runs(self):
        """Wall-boxed partial runs stop at host-dependent points; their
        event counts are not comparable."""
        current = {"a": _row(events=5001, completed=False)}
        assert check_regression(current, {"a": _row(events=5000)}).ok


class TestCoverage:
    def test_scenarios_missing_from_either_side_are_skipped(self):
        result = check_regression(
            {"a": _row(), "only-current": _row()},
            {"a": _row(), "only-baseline": _row()},
        )
        assert result.ok
        assert sorted(result.skipped) == ["only-baseline", "only-current"]

    def test_describe_mentions_failures(self):
        result = check_regression({"a": _row(1.0)}, {"a": _row(10.0)})
        text = result.describe()
        assert "FAIL" in text and "a" in text


def test_load_report_reads_runs_table(tmp_path):
    path = tmp_path / "BENCH_PERF.json"
    path.write_text(json.dumps({"schema": 1, "runs": {"a": _row()}}))
    assert load_report(path) == {"a": _row()}
