"""Fixed-seed bit-fidelity against the pre-optimization golden capture.

The golden file was generated from the unoptimized simulator (commit
before the perf subsystem landed) by running chaos-enabled smoke soaks
and recording each seed's journal digest, final metric dict, and
quiescence outcome. Every optimization since must reproduce all three
bit-for-bit: these runs include preemption waves, API outages, and
image-pull stalls, so the fidelity proof covers the hostile paths too.
"""

from __future__ import annotations

from repro.perf.fidelity import GOLDEN_PATH, check_fidelity, load_golden


def test_golden_capture_exists_and_is_well_formed():
    golden = load_golden()
    assert golden, f"empty golden capture at {GOLDEN_PATH}"
    for seed, entry in golden.items():
        int(seed)  # keys are stringified seeds
        assert entry["journal_digest"], seed
        assert isinstance(entry["stats"], dict) and entry["stats"], seed
        assert "quiesced" in entry


def test_optimized_simulator_matches_pre_optimization_journals():
    """The oracle itself: re-run every golden seed on the current code
    and demand identical journals, metrics, and quiescence."""
    problems = check_fidelity(load_golden())
    assert not problems, "\n".join(problems)
