"""Unit tests for the workflow manager (with a scripted fake submitter)."""

from __future__ import annotations

from typing import Callable, List

import pytest

from repro.cluster.resources import ResourceVector
from repro.makeflow.dag import WorkflowGraph
from repro.makeflow.manager import WorkflowManager
from repro.sim.tracing import MetricRecorder
from repro.wq.task import FileSpec, Task, TaskResult

FOOT = ResourceVector(1, 512, 128)


class FakeSubmitter:
    """Records submissions; completes tasks on demand."""

    def __init__(self, engine):
        self.engine = engine
        self.submitted: List[Task] = []
        self._callbacks: List[Callable] = []

    def submit(self, task: Task) -> None:
        self.submitted.append(task)

    def on_complete(self, fn) -> None:
        self._callbacks.append(fn)

    def complete(self, task: Task) -> None:
        result = TaskResult(
            task_id=task.id,
            category=task.category,
            worker_name="fake",
            submit_time=0.0,
            dispatch_time=0.0,
            start_time=0.0,
            finish_time=self.engine.now,
            execute_seconds=task.execute_s,
            measured_resources=task.footprint,
            attempts=0,
        )
        for fn in self._callbacks:
            fn(task, result)


def task(category, inputs=(), outputs=()):
    return Task(
        category,
        execute_s=10.0,
        footprint=FOOT,
        inputs=tuple(FileSpec(n, 1.0) for n in inputs),
        outputs=tuple(FileSpec(n, 1.0) for n in outputs),
    )


def chain3():
    a = task("a", inputs=["raw"], outputs=["a.out"])
    b = task("b", inputs=["a.out"], outputs=["b.out"])
    c = task("c", inputs=["b.out"], outputs=["c.out"])
    return a, b, c


class TestReleaseOrder:
    def test_start_submits_only_roots(self, engine):
        a, b, c = chain3()
        sub = FakeSubmitter(engine)
        mgr = WorkflowManager(engine, WorkflowGraph([a, b, c]), sub)
        mgr.start()
        assert sub.submitted == [a]

    def test_start_is_idempotent(self, engine):
        a, b, c = chain3()
        sub = FakeSubmitter(engine)
        mgr = WorkflowManager(engine, WorkflowGraph([a, b, c]), sub)
        mgr.start()
        mgr.start()
        assert sub.submitted == [a]

    def test_completion_releases_dependents(self, engine):
        a, b, c = chain3()
        sub = FakeSubmitter(engine)
        mgr = WorkflowManager(engine, WorkflowGraph([a, b, c]), sub)
        mgr.start()
        sub.complete(a)
        assert sub.submitted == [a, b]
        sub.complete(b)
        assert sub.submitted == [a, b, c]

    def test_multi_parent_released_once_all_done(self, engine):
        p1 = task("p", inputs=["raw1"], outputs=["x"])
        p2 = task("p", inputs=["raw2"], outputs=["y"])
        join = task("j", inputs=["x", "y"], outputs=["z"])
        sub = FakeSubmitter(engine)
        mgr = WorkflowManager(engine, WorkflowGraph([p1, p2, join]), sub)
        mgr.start()
        sub.complete(p1)
        assert join not in sub.submitted
        sub.complete(p2)
        assert join in sub.submitted

    def test_foreign_completions_ignored(self, engine):
        a, b, c = chain3()
        other = task("other", outputs=["other.out"])
        sub = FakeSubmitter(engine)
        mgr = WorkflowManager(engine, WorkflowGraph([a, b, c]), sub)
        mgr.start()
        sub.complete(other)  # not part of the DAG
        assert sub.submitted == [a]
        assert not mgr.done

    def test_duplicate_completion_ignored(self, engine):
        a, b, c = chain3()
        sub = FakeSubmitter(engine)
        mgr = WorkflowManager(engine, WorkflowGraph([a, b, c]), sub)
        mgr.start()
        sub.complete(a)
        sub.complete(a)
        assert sub.submitted == [a, b]


class TestCompletion:
    def test_done_and_makespan(self, engine):
        a, b, c = chain3()
        sub = FakeSubmitter(engine)
        mgr = WorkflowManager(engine, WorkflowGraph([a, b, c]), sub)
        mgr.start()
        for t in (a, b, c):
            engine.call_in(10.0, sub.complete, t)
            engine.run(until=engine.now + 10.0)
        assert mgr.done
        assert mgr.makespan == pytest.approx(30.0)

    def test_done_signal_fires_once(self, engine):
        a, b, c = chain3()
        sub = FakeSubmitter(engine)
        mgr = WorkflowManager(engine, WorkflowGraph([a, b, c]), sub)
        fired = []
        mgr.done_signal.add_waiter(fired.append)
        mgr.start()
        for t in (a, b, c):
            sub.complete(t)
        engine.run()
        assert fired == [(mgr, None)] or fired == [mgr]  # payload shape

    def test_progress_fraction(self, engine):
        a, b, c = chain3()
        sub = FakeSubmitter(engine)
        mgr = WorkflowManager(engine, WorkflowGraph([a, b, c]), sub)
        mgr.start()
        assert mgr.progress() == 0.0
        sub.complete(a)
        assert mgr.progress() == pytest.approx(1 / 3)

    def test_category_progress_recorded(self, engine):
        a, b, c = chain3()
        sub = FakeSubmitter(engine)
        rec = MetricRecorder(engine)
        mgr = WorkflowManager(engine, WorkflowGraph([a, b, c]), sub, recorder=rec)
        mgr.start()
        sub.complete(a)
        assert rec.value("workflow.completed") == 1.0
        assert rec.value("workflow.completed.a") == 1.0
