"""Unit tests for the workflow DAG."""

from __future__ import annotations

import pytest

from repro.cluster.resources import ResourceVector
from repro.makeflow.dag import CycleError, WorkflowGraph
from repro.wq.task import FileSpec, Task

FOOT = ResourceVector(1, 512, 128)


def task(category, inputs=(), outputs=(), execute_s=10.0):
    return Task(
        category,
        execute_s=execute_s,
        footprint=FOOT,
        inputs=tuple(FileSpec(n, 1.0) for n in inputs),
        outputs=tuple(FileSpec(n, 1.0) for n in outputs),
    )


def diamond():
    """a → (b, c) → d"""
    a = task("a", inputs=["in"], outputs=["a.out"])
    b = task("b", inputs=["a.out"], outputs=["b.out"])
    c = task("c", inputs=["a.out"], outputs=["c.out"])
    d = task("d", inputs=["b.out", "c.out"], outputs=["d.out"])
    return a, b, c, d


class TestStructure:
    def test_dependencies_derived_from_files(self):
        a, b, c, d = diamond()
        g = WorkflowGraph([a, b, c, d])
        assert g.dependencies[d.id] == {b.id, c.id}
        assert g.dependencies[b.id] == {a.id}
        assert g.dependencies[a.id] == set()
        assert g.dependents[a.id] == {b.id, c.id}

    def test_roots(self):
        a, b, c, d = diamond()
        g = WorkflowGraph([a, b, c, d])
        assert g.roots() == [a]

    def test_initial_and_final_files(self):
        a, b, c, d = diamond()
        g = WorkflowGraph([a, b, c, d])
        assert g.initial_files() == {"in"}
        assert g.final_outputs() == {"d.out"}

    def test_empty_workflow_rejected(self):
        with pytest.raises(ValueError):
            WorkflowGraph([])

    def test_duplicate_producer_rejected(self):
        t1 = task("a", outputs=["x"])
        t2 = task("b", outputs=["x"])
        with pytest.raises(ValueError):
            WorkflowGraph([t1, t2])

    def test_duplicate_task_rejected(self):
        t = task("a", outputs=["x"])
        with pytest.raises(ValueError):
            WorkflowGraph([t, t])

    def test_cycle_detected(self):
        t1 = task("a", inputs=["y"], outputs=["x"])
        t2 = task("b", inputs=["x"], outputs=["y"])
        with pytest.raises(CycleError):
            WorkflowGraph([t1, t2])

    def test_self_loop_ignored(self):
        # A task consuming its own output is degenerate but not a cross-
        # task cycle; the producer map allows it and no edge is created.
        t = task("a", inputs=["x"], outputs=["x"])
        g = WorkflowGraph([t])
        assert g.dependencies[t.id] == set()


class TestAnalysis:
    def test_topological_order_respects_dependencies(self):
        a, b, c, d = diamond()
        g = WorkflowGraph([d, c, b, a])  # shuffled input
        order = [t.id for t in g.topological_order()]
        assert order.index(a.id) < order.index(b.id) < order.index(d.id)
        assert order.index(a.id) < order.index(c.id) < order.index(d.id)

    def test_depth(self):
        a, b, c, d = diamond()
        assert WorkflowGraph([a, b, c, d]).depth() == 3

    def test_width_by_level(self):
        a, b, c, d = diamond()
        assert WorkflowGraph([a, b, c, d]).width_by_level() == {1: 1, 2: 2, 3: 1}

    def test_category_counts_and_order(self):
        tasks = [task("x", outputs=[f"x{i}"]) for i in range(3)]
        tasks += [task("y", outputs=[f"y{i}"]) for i in range(2)]
        g = WorkflowGraph(tasks)
        assert g.category_counts() == {"x": 3, "y": 2}
        assert g.categories() == ["x", "y"]

    def test_total_and_critical_path_seconds(self):
        a, b, c, d = diamond()
        g = WorkflowGraph([a, b, c, d])
        assert g.total_execute_seconds() == pytest.approx(40.0)
        assert g.critical_path_seconds() == pytest.approx(30.0)

    def test_len_and_iter(self):
        a, b, c, d = diamond()
        g = WorkflowGraph([a, b, c, d])
        assert len(g) == 4
        assert set(g) == {a, b, c, d}

    def test_matches_networkx_topology(self):
        """Cross-check our Kahn implementation against networkx."""
        import networkx as nx

        a, b, c, d = diamond()
        g = WorkflowGraph([a, b, c, d])
        nxg = nx.DiGraph()
        for t in g.tasks:
            nxg.add_node(t.id)
        for tid, deps in g.dependencies.items():
            for dep in deps:
                nxg.add_edge(dep, tid)
        assert nx.is_directed_acyclic_graph(nxg)
        assert nx.dag_longest_path_length(nxg) + 1 == g.depth()
