"""Unit tests for the Makeflow-dialect parser."""

from __future__ import annotations

import pytest

from repro.makeflow.parser import MakeflowParseError, parse_makeflow

SIMPLE = """
# A two-rule workflow.
CATEGORY=align
CORES=1
MEMORY=1000
RUNTIME=40

out.1: db.fa in.1
\tblastall -i in.1 -d db.fa -o out.1

out.2: db.fa in.2
\tblastall -i in.2 -d db.fa -o out.2
"""


class TestBasics:
    def test_parses_rules_into_tasks(self):
        g = parse_makeflow(SIMPLE)
        assert len(g) == 2
        t = g.tasks[0]
        assert t.category == "align"
        assert t.execute_s == 40.0
        assert t.declared.cores == 1
        assert t.declared.memory_mb == 1000
        assert {f.name for f in t.inputs} == {"db.fa", "in.1"}
        assert [f.name for f in t.outputs] == ["out.1"]
        assert t.command.startswith("blastall")

    def test_comments_and_blank_lines_ignored(self):
        g = parse_makeflow("# only a comment\nx: y\n\tcmd\n\n# trailing\n")
        assert len(g) == 1

    def test_no_rules_is_error(self):
        with pytest.raises(MakeflowParseError):
            parse_makeflow("CORES=2\n")

    def test_missing_command_is_error(self):
        with pytest.raises(MakeflowParseError) as err:
            parse_makeflow("x: y\nz: w\n\tcmd\n")
        assert "command" in str(err.value)

    def test_command_without_rule_is_error(self):
        with pytest.raises(MakeflowParseError):
            parse_makeflow("\tcmd\n")

    def test_rule_without_targets_is_error(self):
        with pytest.raises(MakeflowParseError):
            parse_makeflow(": src\n\tcmd\n")

    def test_unrecognized_line_reports_number(self):
        with pytest.raises(MakeflowParseError) as err:
            parse_makeflow("x: y\n\tcmd\n???\n")
        assert err.value.line_no == 3


class TestVariables:
    def test_substitution(self):
        g = parse_makeflow("DB=db.fa\nout: $(DB)\n\tblast -d $(DB)\n")
        assert g.tasks[0].inputs[0].name == "db.fa"
        assert "-d db.fa" in g.tasks[0].command

    def test_nested_substitution(self):
        text = "A=x\nB=$(A).fa\nout: $(B)\n\tcmd $(B)\n"
        g = parse_makeflow(text)
        assert g.tasks[0].inputs[0].name == "x.fa"

    def test_undefined_variable_is_error(self):
        with pytest.raises(MakeflowParseError) as err:
            parse_makeflow("out: $(NOPE)\n\tcmd\n")
        assert "NOPE" in str(err.value)

    def test_attribute_variables_sticky_until_changed(self):
        text = (
            "CATEGORY=a\nRUNTIME=10\n"
            "o1: i1\n\tcmd1\n"
            "CATEGORY=b\nRUNTIME=20\n"
            "o2: i2\n\tcmd2\n"
        )
        g = parse_makeflow(text)
        assert g.tasks[0].category == "a"
        assert g.tasks[0].execute_s == 10
        assert g.tasks[1].category == "b"
        assert g.tasks[1].execute_s == 20

    def test_non_numeric_attribute_is_error(self):
        with pytest.raises(MakeflowParseError):
            parse_makeflow("CORES=many\no: i\n\tcmd\n")

    def test_quoted_category_unquoted(self):
        g = parse_makeflow('CATEGORY="align"\no: i\n\tcmd\n')
        assert g.tasks[0].category == "align"


class TestSizesAndContinuation:
    def test_size_directive_sets_file_size(self):
        text = ".SIZE db.fa 1400 CACHE\n.SIZE in.1 7\nout: db.fa in.1\n\tcmd\n"
        g = parse_makeflow(text)
        by_name = {f.name: f for f in g.tasks[0].inputs}
        assert by_name["db.fa"].size_mb == 1400
        assert by_name["db.fa"].cacheable
        assert by_name["in.1"].size_mb == 7
        assert not by_name["in.1"].cacheable

    def test_default_file_size(self):
        g = parse_makeflow("out: in\n\tcmd\n")
        assert g.tasks[0].inputs[0].size_mb == 1.0

    def test_malformed_size_is_error(self):
        with pytest.raises(MakeflowParseError):
            parse_makeflow(".SIZE onlyname\nout: in\n\tcmd\n")

    def test_line_continuation_in_rule(self):
        text = "out: in1 \\\n in2\n\tcmd\n"
        g = parse_makeflow(text)
        assert {f.name for f in g.tasks[0].inputs} == {"in1", "in2"}


class TestDagIntegration:
    def test_dependencies_from_parsed_rules(self):
        text = (
            "mid: raw\n\tstep1\n"
            "final: mid\n\tstep2\n"
        )
        g = parse_makeflow(text)
        order = [t.command for t in g.topological_order()]
        assert order == ["step1", "step2"]

    def test_cycle_in_rules_reported_as_parse_error(self):
        text = "a: b\n\tcmd1\nb: a\n\tcmd2\n"
        with pytest.raises(MakeflowParseError):
            parse_makeflow(text)

    def test_duplicate_target_reported(self):
        text = "x: a\n\tcmd1\nx: b\n\tcmd2\n"
        with pytest.raises(MakeflowParseError):
            parse_makeflow(text)

    def test_parse_file_roundtrip(self, tmp_path):
        from repro.makeflow.parser import parse_makeflow_file

        p = tmp_path / "wf.mf"
        p.write_text(SIMPLE)
        g = parse_makeflow_file(str(p))
        assert len(g) == 2
