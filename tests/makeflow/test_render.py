"""Unit tests for the Makeflow renderer (the property suite covers the
round-trip; these cover the textual surface)."""

from __future__ import annotations

import pytest

from repro.makeflow.parser import parse_makeflow
from repro.makeflow.render import render_makeflow, write_makeflow_file
from repro.workloads.blast import blast_multistage
from repro.workloads.synthetic import fan_in_out, uniform_bag
from repro.makeflow.dag import WorkflowGraph


class TestRendering:
    def test_header_comment_included(self):
        g = WorkflowGraph(uniform_bag(2))
        text = render_makeflow(g, header_comment="generated\nby tests")
        assert text.startswith("# generated\n# by tests\n")

    def test_size_lines_sorted_and_cache_flagged(self):
        g = blast_multistage((3, 1, 2))
        text = render_makeflow(g)
        size_lines = [l for l in text.splitlines() if l.startswith(".SIZE")]
        assert size_lines == sorted(size_lines)
        assert any("blast-db.tar" in l and "CACHE" in l for l in size_lines)

    def test_rules_in_topological_order(self):
        g = fan_in_out(3)
        text = render_makeflow(g)
        # The reducer's rule must come after every mapper rule.
        reduce_pos = text.index("reduce.out:")
        for i in range(3):
            assert text.index(f"map.out.{i:05d}:") < reduce_pos

    def test_attribute_blocks_not_repeated_for_same_category(self):
        g = WorkflowGraph(uniform_bag(5, category="same"))
        text = render_makeflow(g)
        assert text.count("CATEGORY=same") == 1

    def test_written_file_parses(self, tmp_path):
        g = blast_multistage((4, 2, 2))
        path = tmp_path / "wf.mf"
        write_makeflow_file(g, str(path), header_comment="BLAST export")
        reparsed = parse_makeflow(path.read_text())
        assert len(reparsed) == 8

    def test_render_parse_preserves_command(self):
        g = blast_multistage((2, 1, 1))
        reparsed = parse_makeflow(render_makeflow(g))
        original_cmds = sorted(t.command for t in g.tasks)
        reparsed_cmds = sorted(t.command for t in reparsed.tasks)
        assert original_cmds == reparsed_cmds
