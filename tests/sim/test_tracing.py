"""Unit tests for step series, metric recorder, and sampler."""

from __future__ import annotations

import pytest

from repro.sim.engine import Engine
from repro.sim.tracing import MetricRecorder, Sampler, StepSeries


class TestStepSeries:
    def test_initial_value_before_first_change(self):
        s = StepSeries("x", initial=3.0)
        assert s.value_at(0.0) == 3.0
        assert s.value_at(100.0) == 3.0

    def test_right_continuous_semantics(self):
        s = StepSeries()
        s.record(5.0, 10.0)
        assert s.value_at(4.999) == 0.0
        assert s.value_at(5.0) == 10.0
        assert s.value_at(5.001) == 10.0

    def test_non_decreasing_time_enforced(self):
        s = StepSeries("x")
        s.record(5.0, 1.0)
        with pytest.raises(ValueError):
            s.record(4.0, 2.0)

    def test_same_time_update_supersedes(self):
        s = StepSeries()
        s.record(5.0, 1.0)
        s.record(5.0, 9.0)
        assert s.value_at(5.0) == 9.0
        assert len(s) == 1

    def test_unchanged_value_not_stored(self):
        s = StepSeries()
        s.record(1.0, 4.0)
        s.record(2.0, 4.0)
        assert len(s) == 1

    def test_last_value_and_time(self):
        s = StepSeries(initial=7.0)
        assert s.last_value == 7.0
        assert s.last_time is None
        s.record(2.0, 1.0)
        assert s.last_value == 1.0
        assert s.last_time == 2.0

    def test_integral_of_constant(self):
        s = StepSeries(initial=2.0)
        assert s.integrate(0.0, 10.0) == pytest.approx(20.0)

    def test_integral_across_changes(self):
        s = StepSeries()
        s.record(0.0, 1.0)
        s.record(4.0, 3.0)
        s.record(6.0, 0.0)
        # 1*4 + 3*2 + 0*4 = 10 over [0, 10]
        assert s.integrate(0.0, 10.0) == pytest.approx(10.0)

    def test_integral_partial_window(self):
        s = StepSeries()
        s.record(0.0, 2.0)
        s.record(10.0, 4.0)
        assert s.integrate(5.0, 15.0) == pytest.approx(2.0 * 5 + 4.0 * 5)

    def test_integral_empty_window(self):
        s = StepSeries(initial=5.0)
        assert s.integrate(3.0, 3.0) == 0.0

    def test_integral_reversed_window_raises(self):
        s = StepSeries()
        with pytest.raises(ValueError):
            s.integrate(5.0, 2.0)

    def test_mean_is_time_weighted(self):
        s = StepSeries()
        s.record(0.0, 0.0)
        s.record(9.0, 10.0)
        # 9s at 0 then 1s at 10 → mean 1.0 over [0,10]
        assert s.mean(0.0, 10.0) == pytest.approx(1.0)

    def test_maximum_over_window(self):
        s = StepSeries()
        s.record(0.0, 1.0)
        s.record(5.0, 9.0)
        s.record(6.0, 2.0)
        assert s.maximum(0.0, 10.0) == 9.0
        assert s.maximum(6.5, 10.0) == 2.0

    def test_resample_grid(self):
        s = StepSeries()
        s.record(0.0, 1.0)
        s.record(5.0, 2.0)
        ts, vs = s.resample(0.0, 10.0, 2.5)
        assert ts == [0.0, 2.5, 5.0, 7.5, 10.0]
        assert vs == [1.0, 1.0, 2.0, 2.0, 2.0]

    def test_resample_requires_positive_dt(self):
        with pytest.raises(ValueError):
            StepSeries().resample(0, 1, 0)


class TestMetricRecorder:
    def test_set_records_at_engine_time(self, engine):
        rec = MetricRecorder(engine)
        engine.call_in(4.0, rec.set, "pods", 3.0)
        engine.run()
        assert rec.series["pods"].value_at(4.0) == 3.0

    def test_inc_dec_counters(self, engine):
        rec = MetricRecorder(engine)
        assert rec.inc("n") == 1.0
        assert rec.inc("n", 2.0) == 3.0
        assert rec.dec("n") == 2.0
        assert rec.value("n") == 2.0

    def test_value_of_unknown_series_is_zero(self, engine):
        assert MetricRecorder(engine).value("nope") == 0.0

    def test_integral_helper(self, engine):
        rec = MetricRecorder(engine)
        rec.set("x", 5.0)
        engine.call_in(10.0, lambda: None)
        engine.run()
        assert rec.integral("x", 0.0, 10.0) == pytest.approx(50.0)

    def test_names(self, engine):
        rec = MetricRecorder(engine)
        rec.set("a", 1)
        rec.set("b", 2)
        assert set(rec.names()) == {"a", "b"}


class TestSampler:
    def test_samples_on_cadence(self, engine):
        state = {"v": 0.0}
        sampler = Sampler(engine, period=1.0)
        sampler.add_gauge("g", lambda: state["v"])
        sampler.start()
        engine.call_in(2.5, lambda: state.__setitem__("v", 7.0))
        engine.run(until=5.0)
        series = sampler.series["g"]
        assert series.value_at(2.0) == 0.0
        assert series.value_at(3.0) == 7.0

    def test_stop_halts_sampling(self, engine):
        state = {"v": 0.0}
        sampler = Sampler(engine, period=1.0)
        sampler.add_gauge("g", lambda: state["v"])
        sampler.start()
        engine.run(until=2.0)
        sampler.stop()
        state["v"] = 99.0
        engine.run(until=10.0)
        assert sampler.series["g"].value_at(10.0) == 0.0

    def test_sample_now_forces_a_sample(self, engine):
        state = {"v": 5.0}
        sampler = Sampler(engine, period=100.0)
        sampler.add_gauge("g", lambda: state["v"])
        sampler.sample_now()
        assert sampler.series["g"].value_at(0.0) == 5.0

    def test_start_is_idempotent(self, engine):
        calls = []
        sampler = Sampler(engine, period=1.0)
        sampler.add_gauge("g", lambda: calls.append(1) or 0.0)
        sampler.start()
        sampler.start()
        engine.run(until=1.0)
        assert len(calls) == 2  # t=0 and t=1, not doubled
