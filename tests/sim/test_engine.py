"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.sim.engine import Engine, PeriodicTask, SimulationError


class TestScheduling:
    def test_clock_starts_at_zero(self, engine):
        assert engine.now == 0.0

    def test_call_in_advances_clock_to_event_time(self, engine):
        fired = []
        engine.call_in(5.0, fired.append, "a")
        engine.run()
        assert fired == ["a"]
        assert engine.now == 5.0

    def test_call_at_absolute_time(self, engine):
        times = []
        engine.call_at(3.0, lambda: times.append(engine.now))
        engine.run()
        assert times == [3.0]

    def test_events_fire_in_time_order(self, engine):
        order = []
        engine.call_in(10.0, order.append, "late")
        engine.call_in(1.0, order.append, "early")
        engine.call_in(5.0, order.append, "mid")
        engine.run()
        assert order == ["early", "mid", "late"]

    def test_same_time_events_fire_fifo(self, engine):
        order = []
        for i in range(10):
            engine.call_at(7.0, order.append, i)
        engine.run()
        assert order == list(range(10))

    def test_call_soon_fires_at_current_instant(self, engine):
        stamps = []
        engine.call_in(2.0, lambda: engine.call_soon(lambda: stamps.append(engine.now)))
        engine.run()
        assert stamps == [2.0]

    def test_scheduling_in_the_past_raises(self, engine):
        engine.call_in(5.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.call_at(1.0, lambda: None)

    def test_negative_delay_raises(self, engine):
        with pytest.raises(SimulationError):
            engine.call_in(-1.0, lambda: None)

    def test_non_finite_time_raises(self, engine):
        with pytest.raises(SimulationError):
            engine.call_at(float("inf"), lambda: None)
        with pytest.raises(SimulationError):
            engine.call_at(float("nan"), lambda: None)

    def test_callback_args_are_passed(self, engine):
        got = []
        engine.call_in(1.0, lambda a, b: got.append((a, b)), 1, "x")
        engine.run()
        assert got == [(1, "x")]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, engine):
        fired = []
        ev = engine.call_in(1.0, fired.append, "x")
        ev.cancel()
        engine.run()
        assert fired == []

    def test_cancel_is_idempotent(self, engine):
        ev = engine.call_in(1.0, lambda: None)
        ev.cancel()
        ev.cancel()
        assert not ev.pending

    def test_cancel_after_fire_is_safe(self, engine):
        ev = engine.call_in(1.0, lambda: None)
        engine.run()
        ev.cancel()
        assert ev.fired

    def test_pending_property_lifecycle(self, engine):
        ev = engine.call_in(1.0, lambda: None)
        assert ev.pending
        engine.run()
        assert not ev.pending

    def test_pending_count_excludes_cancelled(self, engine):
        ev1 = engine.call_in(1.0, lambda: None)
        engine.call_in(2.0, lambda: None)
        ev1.cancel()
        assert engine.pending_count() == 1


class TestRun:
    def test_run_until_stops_at_horizon(self, engine):
        fired = []
        engine.call_in(10.0, fired.append, "later")
        engine.run(until=5.0)
        assert fired == []
        assert engine.now == 5.0

    def test_run_until_fires_events_at_horizon(self, engine):
        fired = []
        engine.call_in(5.0, fired.append, "boundary")
        engine.run(until=5.0)
        assert fired == ["boundary"]

    def test_run_until_advances_clock_when_queue_drains(self, engine):
        engine.run(until=100.0)
        assert engine.now == 100.0

    def test_run_resumes_after_horizon(self, engine):
        fired = []
        engine.call_in(10.0, fired.append, "x")
        engine.run(until=5.0)
        engine.run()
        assert fired == ["x"]
        assert engine.now == 10.0

    def test_max_events_limits_firing(self, engine):
        fired = []
        for i in range(10):
            engine.call_in(float(i + 1), fired.append, i)
        engine.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_step_fires_exactly_one(self, engine):
        fired = []
        engine.call_in(1.0, fired.append, "a")
        engine.call_in(2.0, fired.append, "b")
        assert engine.step()
        assert fired == ["a"]

    def test_step_returns_false_when_empty(self, engine):
        assert engine.step() is False

    def test_engine_not_reentrant(self, engine):
        errors = []

        def reenter():
            try:
                engine.run()
            except SimulationError as exc:
                errors.append(exc)

        engine.call_in(1.0, reenter)
        engine.run()
        assert len(errors) == 1

    def test_events_can_schedule_more_events(self, engine):
        fired = []

        def chain(n):
            fired.append(n)
            if n < 5:
                engine.call_in(1.0, chain, n + 1)

        engine.call_in(1.0, chain, 0)
        engine.run()
        assert fired == [0, 1, 2, 3, 4, 5]
        assert engine.now == 6.0

    def test_events_fired_counter(self, engine):
        for _ in range(4):
            engine.call_in(1.0, lambda: None)
        engine.run()
        assert engine.events_fired == 4


class TestPeriodicTask:
    def test_fires_every_period(self, engine):
        stamps = []
        PeriodicTask(engine, 10.0, lambda: stamps.append(engine.now))
        engine.run(until=35.0)
        assert stamps == [10.0, 20.0, 30.0]

    def test_start_after_overrides_first_delay(self, engine):
        stamps = []
        PeriodicTask(engine, 10.0, lambda: stamps.append(engine.now), start_after=0.0)
        engine.run(until=25.0)
        assert stamps == [0.0, 10.0, 20.0]

    def test_stop_prevents_further_firing(self, engine):
        stamps = []
        task = PeriodicTask(engine, 5.0, lambda: stamps.append(engine.now))
        engine.run(until=12.0)
        task.stop()
        engine.run(until=100.0)
        assert stamps == [5.0, 10.0]
        assert not task.running

    def test_returning_false_stops_loop(self, engine):
        stamps = []

        def once():
            stamps.append(engine.now)
            return False

        PeriodicTask(engine, 5.0, once)
        engine.run(until=100.0)
        assert stamps == [5.0]

    def test_return_delay_ignored_by_default(self, engine):
        stamps = []

        def body():
            stamps.append(engine.now)
            return 100.0  # must NOT be treated as a delay

        PeriodicTask(engine, 5.0, body)
        engine.run(until=16.0)
        assert stamps == [5.0, 10.0, 15.0]

    def test_return_delay_honoured_when_enabled(self, engine):
        stamps = []

        def body():
            stamps.append(engine.now)
            return 20.0

        PeriodicTask(engine, 5.0, body, use_return_delay=True)
        engine.run(until=50.0)
        assert stamps == [5.0, 25.0, 45.0]

    def test_non_positive_returned_delay_raises(self, engine):
        PeriodicTask(engine, 5.0, lambda: 0.0, use_return_delay=True)
        with pytest.raises(SimulationError):
            engine.run(until=10.0)

    def test_non_positive_period_rejected(self, engine):
        with pytest.raises(SimulationError):
            PeriodicTask(engine, 0.0, lambda: None)

    def test_stop_inside_callback(self, engine):
        stamps = []
        holder = {}

        def body():
            stamps.append(engine.now)
            holder["task"].stop()

        holder["task"] = PeriodicTask(engine, 5.0, body)
        engine.run(until=100.0)
        assert stamps == [5.0]
