"""Unit tests for named RNG streams."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.rng import RngRegistry, derive_seed


class TestDerivation:
    def test_same_name_same_seed(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_different_names_differ(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_different_master_seeds_differ(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")


class TestStreams:
    def test_stream_is_cached(self):
        reg = RngRegistry(7)
        assert reg.stream("x") is reg.stream("x")

    def test_streams_independent_of_creation_order(self):
        reg1 = RngRegistry(7)
        a_first = reg1.stream("a").random(5)

        reg2 = RngRegistry(7)
        reg2.stream("b").random(100)  # consume another stream first
        a_second = reg2.stream("a").random(5)
        assert np.allclose(a_first, a_second)

    def test_replay_is_bit_identical(self):
        draws1 = [RngRegistry(3).normal("lat", 100, 5) for _ in range(1)]
        draws2 = [RngRegistry(3).normal("lat", 100, 5) for _ in range(1)]
        assert draws1 == draws2

    def test_names_reports_created_streams(self):
        reg = RngRegistry(0)
        reg.stream("one")
        reg.stream("two")
        assert set(reg.names()) == {"one", "two"}


class TestConvenienceDraws:
    def test_normal_zero_std_returns_mean(self):
        assert RngRegistry(0).normal("s", 42.0, 0.0) == 42.0

    def test_normal_floor_clips(self):
        reg = RngRegistry(0)
        values = [reg.normal("s", 0.0, 10.0, floor=5.0) for _ in range(50)]
        assert all(v >= 5.0 for v in values)

    def test_uniform_within_bounds(self):
        reg = RngRegistry(0)
        values = [reg.uniform("u", 2.0, 3.0) for _ in range(100)]
        assert all(2.0 <= v <= 3.0 for v in values)

    def test_lognormal_zero_cv_returns_mean(self):
        assert RngRegistry(0).lognormal_around("l", 50.0, 0.0) == 50.0

    def test_lognormal_mean_approximately_correct(self):
        reg = RngRegistry(0)
        values = [reg.lognormal_around("l", 100.0, 0.1) for _ in range(4000)]
        assert abs(np.mean(values) - 100.0) < 2.0

    def test_lognormal_strictly_positive(self):
        reg = RngRegistry(0)
        values = [reg.lognormal_around("l", 10.0, 1.0) for _ in range(200)]
        assert all(v > 0 for v in values)


class TestFork:
    def test_fork_streams_differ_from_parent(self):
        parent = RngRegistry(9)
        child = parent.fork("replica-1")
        assert parent.stream("x").random() != child.stream("x").random()

    def test_fork_is_deterministic(self):
        a = RngRegistry(9).fork("r").normal("s", 0, 1)
        b = RngRegistry(9).fork("r").normal("s", 0, 1)
        assert a == b

    def test_distinct_forks_differ(self):
        reg = RngRegistry(9)
        assert reg.fork("a").master_seed != reg.fork("b").master_seed
