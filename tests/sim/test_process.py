"""Unit tests for generator processes, signals, and join combinators."""

from __future__ import annotations

import pytest

from repro.sim.engine import Engine, SimulationError
from repro.sim.process import AllOf, AnyOf, ProcessFailed, Signal, Timeout, Wait, spawn


class TestTimeout:
    def test_process_sleeps_for_timeout(self, engine):
        log = []

        def body():
            log.append(engine.now)
            yield Timeout(5.0)
            log.append(engine.now)

        spawn(engine, body())
        engine.run()
        assert log == [0.0, 5.0]

    def test_timeout_value_passed_back(self, engine):
        got = []

        def body():
            v = yield Timeout(1.0, value="payload")
            got.append(v)

        spawn(engine, body())
        engine.run()
        assert got == ["payload"]

    def test_negative_timeout_rejected(self):
        with pytest.raises(SimulationError):
            Timeout(-1.0)

    def test_process_result_is_return_value(self, engine):
        def body():
            yield Timeout(1.0)
            return 42

        p = spawn(engine, body())
        engine.run()
        assert p.done
        assert p.result == 42
        assert p.error is None


class TestSignal:
    def test_fire_wakes_waiters_with_payload(self, engine):
        sig = Signal(engine, "s")
        got = []

        def body():
            v = yield Wait(sig)
            got.append(v)

        spawn(engine, body())
        engine.call_in(3.0, sig.fire, "hello")
        engine.run()
        assert got == ["hello"]

    def test_fire_returns_waiter_count(self, engine):
        sig = Signal(engine, "s")

        def waiter():
            yield Wait(sig)

        for _ in range(3):
            spawn(engine, waiter())
        engine.run(until=0.0)
        assert sig.fire() == 3

    def test_payload_not_buffered(self, engine):
        sig = Signal(engine, "s")
        got = []
        sig.fire("lost")

        def late():
            v = yield Wait(sig)
            got.append(v)

        spawn(engine, late())
        engine.call_in(1.0, sig.fire, "second")
        engine.run()
        assert got == ["second"]

    def test_fire_once_latches(self, engine):
        sig = Signal(engine, "s")
        sig.fire_once("latched")
        got = []

        def late():
            v = yield Wait(sig)
            got.append(v)

        spawn(engine, late())
        engine.run()
        assert got == ["latched"]
        assert sig.latched

    def test_fire_once_is_idempotent(self, engine):
        sig = Signal(engine, "s")
        sig.fire_once(1)
        sig.fire_once(2)
        got = []
        sig.add_waiter(got.append)
        engine.run()
        assert got == [1]


class TestProcessComposition:
    def test_parent_waits_for_child_result(self, engine):
        def child():
            yield Timeout(4.0)
            return "child-done"

        got = []

        def parent():
            v = yield spawn(engine, child(), "child")
            got.append((v, engine.now))

        spawn(engine, parent(), "parent")
        engine.run()
        assert got == [("child-done", 4.0)]

    def test_child_failure_propagates_as_process_failed(self, engine):
        def child():
            yield Timeout(1.0)
            raise ValueError("boom")

        caught = []

        def parent():
            try:
                yield spawn(engine, child(), "child")
            except ProcessFailed as exc:
                caught.append(exc)

        spawn(engine, parent())
        engine.run()
        assert len(caught) == 1
        assert isinstance(caught[0].cause, ValueError)

    def test_allof_collects_in_declaration_order(self, engine):
        got = []

        def body():
            values = yield AllOf([Timeout(5.0, "slow"), Timeout(1.0, "fast")])
            got.append((values, engine.now))

        spawn(engine, body())
        engine.run()
        assert got == [(["slow", "fast"], 5.0)]

    def test_allof_empty_completes_immediately(self, engine):
        got = []

        def body():
            values = yield AllOf([])
            got.append(values)

        spawn(engine, body())
        engine.run()
        assert got == [[]]

    def test_anyof_returns_winner_index_and_value(self, engine):
        got = []

        def body():
            winner = yield AnyOf([Timeout(5.0, "slow"), Timeout(1.0, "fast")])
            got.append((winner, engine.now))

        spawn(engine, body())
        engine.run()
        assert got == [((1, "fast"), 1.0)]

    def test_anyof_cancels_losers(self, engine):
        def body():
            yield AnyOf([Timeout(1.0), Timeout(100.0)])

        spawn(engine, body())
        engine.run()
        assert engine.now == 1.0  # the 100s timer must not hold the clock

    def test_anyof_requires_items(self):
        with pytest.raises(SimulationError):
            AnyOf([])

    def test_anyof_with_signal_detaches_on_timeout_win(self, engine):
        sig = Signal(engine, "s")

        def body():
            yield AnyOf([Wait(sig), Timeout(2.0)])

        spawn(engine, body())
        engine.run()
        assert sig.waiter_count == 0


class TestCancellation:
    def test_cancel_stops_process(self, engine):
        log = []

        def body():
            yield Timeout(10.0)
            log.append("never")

        p = spawn(engine, body())
        engine.call_in(1.0, p.cancel)
        engine.run()
        assert log == []
        assert p.done

    def test_cancel_runs_finally_blocks(self, engine):
        log = []

        def body():
            try:
                yield Timeout(10.0)
            finally:
                log.append("cleanup")

        p = spawn(engine, body())
        engine.call_in(1.0, p.cancel)
        engine.run()
        assert log == ["cleanup"]

    def test_done_signal_fires_on_completion(self, engine):
        def body():
            yield Timeout(2.0)
            return "v"

        p = spawn(engine, body())
        got = []
        p.done_signal.add_waiter(got.append)
        engine.run()
        assert got == [("v", None)]

    def test_unsupported_yield_fails_process(self, engine):
        def body():
            yield "garbage"

        p = spawn(engine, body())
        engine.run()
        assert p.done
        assert isinstance(p.error, SimulationError)
