"""End-to-end integration tests across all subsystems."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import ClusterConfig
from repro.cluster.node import N1_STANDARD_4_RESERVED
from repro.experiments.runner import (
    StackConfig,
    run_hpa_experiment,
    run_hta_experiment,
    run_static_experiment,
)
from repro.makeflow.parser import parse_makeflow
from repro.workloads.synthetic import fan_in_out, staged_pipeline, uniform_bag


def small_stack(seed=0, min_nodes=2, max_nodes=6):
    return StackConfig(
        cluster=ClusterConfig(
            machine_type=N1_STANDARD_4_RESERVED,
            min_nodes=min_nodes,
            max_nodes=max_nodes,
            node_reservation_mean_s=100.0,
            node_reservation_std_s=1.0,
            node_idle_timeout_s=120.0,
        ),
        seed=seed,
    )


class TestHtaEndToEnd:
    def test_bag_of_tasks_completes(self):
        r = run_hta_experiment(
            uniform_bag(30, execute_s=50.0, declared=False),
            stack_config=small_stack(),
        )
        assert r.tasks_completed == 30
        assert r.makespan_s > 0
        assert r.accounting.accumulated_shortage_core_s >= 0

    def test_declared_bag_skips_probing(self):
        r = run_hta_experiment(
            uniform_bag(20, execute_s=30.0, declared=True),
            stack_config=small_stack(),
        )
        assert r.tasks_completed == 20

    def test_dag_workflow_completes(self):
        r = run_hta_experiment(
            staged_pipeline([12, 3, 12], execute_s=40.0, declared=True),
            stack_config=small_stack(),
        )
        assert r.tasks_completed == 27

    def test_fan_in_out_completes(self):
        r = run_hta_experiment(
            fan_in_out(8, execute_s=30.0, declared=True),
            stack_config=small_stack(),
        )
        assert r.tasks_completed == 17

    def test_parsed_makeflow_runs_end_to_end(self):
        text = "\n".join(
            ["CATEGORY=stage1", "CORES=1", "MEMORY=1000", "RUNTIME=20"]
            + [f"m{i}: raw{i}\n\tmap {i}" for i in range(4)]
            + ["CATEGORY=stage2", "RUNTIME=10"]
            + ["final: m0 m1 m2 m3\n\treduce"]
        )
        graph = parse_makeflow(text)
        r = run_hta_experiment(graph, stack_config=small_stack())
        assert r.tasks_completed == 5

    def test_scale_up_and_back_down(self):
        r = run_hta_experiment(
            uniform_bag(60, execute_s=60.0, declared=True),
            stack_config=small_stack(max_nodes=8),
        )
        t0, t1 = r.accountant.window()
        supply = r.series("supply")
        assert supply.maximum(t0, t1) > 6.0  # grew past initial 2 workers
        assert supply.value_at(t1) == 0.0  # clean-up drained everything


class TestHpaEndToEnd:
    def test_cpu_bound_bag_scales_up(self):
        r = run_hpa_experiment(
            uniform_bag(40, execute_s=60.0, declared=True),
            target_cpu=0.2,
            stack_config=small_stack(max_nodes=6),
        )
        assert r.tasks_completed == 40
        t0, t1 = r.accountant.window()
        assert r.series("supply").maximum(t0, t1) > 6.0

    def test_low_cpu_bag_never_scales(self):
        from repro.workloads.iobound import iobound_parallel

        r = run_hpa_experiment(
            iobound_parallel(20, execute_s=40.0, declared=True),
            target_cpu=0.5,
            stack_config=small_stack(),
            min_replicas=2,
        )
        assert r.tasks_completed == 20
        t0, t1 = r.accountant.window()
        # Supply never exceeded the floor pool of 2 × 3-core workers.
        assert r.series("supply").maximum(t0, t1) <= 6.0 + 1e-9


class TestStaticEndToEnd:
    def test_fixed_pool_completes(self):
        r = run_static_experiment(
            uniform_bag(20, execute_s=30.0, declared=True),
            n_workers=3,
            stack_config=small_stack(min_nodes=3),
            estimator="declared",
        )
        assert r.tasks_completed == 20
        assert "mean_bandwidth_mbps" in r.extras

    def test_conservative_pool_serializes(self):
        fast = run_static_experiment(
            uniform_bag(12, execute_s=30.0, declared=True),
            n_workers=3,
            stack_config=small_stack(min_nodes=3),
            estimator="declared",
        )
        slow = run_static_experiment(
            uniform_bag(12, execute_s=30.0, declared=False),
            n_workers=3,
            stack_config=small_stack(min_nodes=3),
            estimator="conservative",
        )
        assert slow.makespan_s > fast.makespan_s * 1.5

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            run_static_experiment(uniform_bag(1), n_workers=0)


class TestCrossPolicy:
    def test_hta_wastes_less_than_hpa_on_multistage(self):
        """The paper's core claim at small scale."""
        workload = lambda: staged_pipeline([20, 4, 16], execute_s=60.0, declared=True)
        hta = run_hta_experiment(workload(), stack_config=small_stack(max_nodes=8))
        hpa = run_hpa_experiment(
            workload(), target_cpu=0.2, stack_config=small_stack(max_nodes=8)
        )
        assert hta.tasks_completed == hpa.tasks_completed == 40
        assert (
            hta.accounting.accumulated_waste_core_s
            < hpa.accounting.accumulated_waste_core_s
        )

    def test_hta_beats_hpa_on_io_bound(self):
        from repro.workloads.iobound import iobound_parallel

        workload = lambda: iobound_parallel(40, execute_s=60.0, declared=False)
        hta = run_hta_experiment(workload(), stack_config=small_stack(max_nodes=8))
        hpa = run_hpa_experiment(
            workload(), target_cpu=0.2, stack_config=small_stack(max_nodes=8)
        )
        assert hta.makespan_s < hpa.makespan_s
