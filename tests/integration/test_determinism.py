"""Determinism: same seed → bit-identical results; different seed → jitter."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import ClusterConfig
from repro.cluster.node import N1_STANDARD_4_RESERVED
from repro.experiments.runner import StackConfig, run_hpa_experiment, run_hta_experiment
from repro.workloads.synthetic import staged_pipeline, uniform_bag


def stack(seed):
    return StackConfig(
        cluster=ClusterConfig(
            machine_type=N1_STANDARD_4_RESERVED,
            min_nodes=2,
            max_nodes=5,
            node_reservation_mean_s=100.0,
            node_reservation_std_s=3.0,
        ),
        seed=seed,
    )


def fingerprint(result):
    return (
        result.makespan_s,
        result.accounting.accumulated_waste_core_s,
        result.accounting.accumulated_shortage_core_s,
        result.tasks_completed,
        result.workers_started,
    )


class TestReplay:
    def test_hta_replays_bit_identically(self):
        a = run_hta_experiment(uniform_bag(15, execute_s=40.0, declared=False), stack_config=stack(7))
        b = run_hta_experiment(uniform_bag(15, execute_s=40.0, declared=False), stack_config=stack(7))
        assert fingerprint(a) == fingerprint(b)

    def test_hpa_replays_bit_identically(self):
        a = run_hpa_experiment(
            uniform_bag(15, execute_s=40.0, declared=True), target_cpu=0.2, stack_config=stack(7)
        )
        b = run_hpa_experiment(
            uniform_bag(15, execute_s=40.0, declared=True), target_cpu=0.2, stack_config=stack(7)
        )
        assert fingerprint(a) == fingerprint(b)

    def test_dag_replays_bit_identically(self):
        wl = lambda: staged_pipeline([8, 2, 8], execute_s=30.0, declared=True)
        a = run_hta_experiment(wl(), stack_config=stack(3))
        b = run_hta_experiment(wl(), stack_config=stack(3))
        assert fingerprint(a) == fingerprint(b)

    def test_series_replay_identical(self):
        wl = lambda: uniform_bag(10, execute_s=30.0, declared=True)
        a = run_hta_experiment(wl(), stack_config=stack(5))
        b = run_hta_experiment(wl(), stack_config=stack(5))
        sa, sb = a.series("supply"), b.series("supply")
        assert sa.times == sb.times
        assert sa.values == sb.values


class TestSeedSensitivity:
    def test_different_seeds_diverge(self):
        """Node-provisioning jitter must actually vary with the seed."""
        results = {
            fingerprint(
                run_hta_experiment(
                    uniform_bag(30, execute_s=40.0, declared=True),
                    stack_config=stack(seed),
                )
            )
            for seed in (1, 2, 3)
        }
        assert len(results) > 1
