"""Two overlapping workflows sharing one master + HTA operator.

The paper's facility serves many users; the operator must handle
interleaved DAGs: category statistics shared, clean-up deferred until
*every* workflow has finished, and no cross-workflow interference.
"""

from __future__ import annotations

import pytest

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.images import ContainerImage
from repro.cluster.node import N1_STANDARD_4_RESERVED
from repro.hta.estimator import EstimatorConfig
from repro.hta.inittime import InitTimeTracker
from repro.hta.operator import HtaConfig, HtaOperator
from repro.hta.provisioner import WorkerProvisioner
from repro.makeflow.manager import WorkflowManager
from repro.sim.rng import RngRegistry
from repro.wq.estimator import MonitorEstimator
from repro.wq.link import Link
from repro.wq.master import Master
from repro.wq.monitor import ResourceMonitor
from repro.wq.runtime import WorkerPodRuntime
from repro.workloads.synthetic import staged_pipeline, uniform_bag


@pytest.fixture
def stack(engine):
    cluster = Cluster(
        engine,
        RngRegistry(17),
        ClusterConfig(
            machine_type=N1_STANDARD_4_RESERVED,
            min_nodes=2,
            max_nodes=8,
            node_reservation_mean_s=80.0,
            node_reservation_std_s=0.0,
            registry_jitter_cv=0.0,
        ),
    )
    link = Link(engine, 500.0)
    monitor = ResourceMonitor()
    master = Master(engine, link, estimator=MonitorEstimator(monitor), monitor=monitor)
    runtime = WorkerPodRuntime(engine, cluster.api, cluster.kubelets, master)
    provisioner = WorkerProvisioner(
        engine,
        cluster.api,
        runtime,
        image=ContainerImage("wq-worker", 100.0),
        worker_request=N1_STANDARD_4_RESERVED.allocatable,
    )
    tracker = InitTimeTracker(cluster.api, prior_s=110.0, selector_label="wq-worker")
    operator = HtaOperator(
        engine,
        master,
        provisioner,
        tracker,
        HtaConfig(
            initial_workers=2,
            max_workers=8,
            min_workers=1,
            first_cycle_s=2.0,
            estimator=EstimatorConfig(default_cycle_s=10.0, min_cycle_s=2.0),
        ),
    )
    return cluster, master, operator, provisioner


class TestMultiWorkflow:
    def _wire(self, engine, operator, graphs, start_times):
        managers = []
        remaining = [len(graphs)]

        def one_done(_m):
            remaining[0] -= 1
            if remaining[0] == 0:
                operator.notify_no_more_jobs()

        for graph, start in zip(graphs, start_times):
            manager = WorkflowManager(engine, graph, operator)
            manager.done_signal.add_waiter(one_done)
            managers.append(manager)
            engine.call_at(start, manager.start)
        operator.start()
        return managers

    def test_overlapping_workflows_both_complete(self, engine, stack):
        cluster, master, operator, provisioner = stack
        g1 = staged_pipeline([10, 2, 8], execute_s=40.0, declared=False)
        g2 = staged_pipeline([8, 2, 6], execute_s=40.0, declared=False)
        managers = self._wire(engine, operator, [g1, g2], [0.0, 150.0])
        engine.run(until=10_000.0)
        assert all(m.done for m in managers)
        assert master.all_done
        # Clean-up happened exactly once, after both finished.
        assert master.stats().workers_connected == 0
        assert provisioner.live_pods() == []

    def test_no_premature_cleanup_between_workflows(self, engine, stack):
        """The first workflow finishing must not drain the pool while the
        second is still mid-flight."""
        cluster, master, operator, provisioner = stack
        g1 = uniform_bag(4, execute_s=20.0, declared=True)
        g2 = staged_pipeline([8, 2, 6], execute_s=60.0, declared=True)
        from repro.makeflow.dag import WorkflowGraph

        managers = self._wire(
            engine, operator, [WorkflowGraph(g1), g2], [0.0, 10.0]
        )
        # Run until workflow 1 is surely done but workflow 2 is not.
        engine.run(until=200.0)
        assert managers[0].done and not managers[1].done
        assert master.stats().workers_connected > 0  # pool still alive
        engine.run(until=10_000.0)
        assert managers[1].done
        assert master.stats().workers_connected == 0

    def test_category_stats_shared_across_workflows(self, engine, stack):
        """Both workflows use category 'stage0'...: once workflow 1's probe
        completes, workflow 2's same-category tasks skip probing."""
        cluster, master, operator, provisioner = stack
        from repro.makeflow.dag import WorkflowGraph

        g1 = WorkflowGraph(uniform_bag(6, execute_s=30.0, declared=False, category="shared"))
        g2 = WorkflowGraph(uniform_bag(6, execute_s=30.0, declared=False, category="shared"))
        managers = self._wire(engine, operator, [g1, g2], [0.0, 200.0])
        engine.run(until=10_000.0)
        assert all(m.done for m in managers)
        # Exactly one probe ran exclusively: workflow 2 submitted straight
        # through (held_count never grew after the estimate existed).
        assert master.monitor.category("shared").count == 12
