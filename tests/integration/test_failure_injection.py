"""Failure injection: killed pods, mid-run disruption, requeue correctness."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.images import ContainerImage
from repro.cluster.node import N1_STANDARD_4_RESERVED
from repro.cluster.pod import PodPhase
from repro.cluster.resources import ResourceVector
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.wq.estimator import DeclaredResourceEstimator
from repro.wq.link import Link
from repro.wq.master import Master
from repro.wq.runtime import WorkerPodRuntime
from repro.wq.task import Task, TaskState
from repro.hta.provisioner import WorkerProvisioner

FOOT = ResourceVector(1, 1024, 512)


@pytest.fixture
def stack(engine):
    cluster = Cluster(
        engine,
        RngRegistry(21),
        ClusterConfig(
            machine_type=N1_STANDARD_4_RESERVED,
            min_nodes=3,
            max_nodes=6,
            node_reservation_mean_s=80.0,
            node_reservation_std_s=0.0,
            registry_jitter_cv=0.0,
        ),
    )
    link = Link(engine, 500.0)
    master = Master(engine, link, estimator=DeclaredResourceEstimator())
    runtime = WorkerPodRuntime(engine, cluster.api, cluster.kubelets, master)
    provisioner = WorkerProvisioner(
        engine,
        cluster.api,
        runtime,
        image=ContainerImage("wq-worker", 100.0),
        worker_request=N1_STANDARD_4_RESERVED.allocatable,
    )
    return cluster, master, runtime, provisioner


def bag(n, execute_s=60.0):
    return [
        Task("c", execute_s=execute_s, footprint=FOOT, declared=FOOT) for _ in range(n)
    ]


class TestPodKills:
    def test_all_tasks_complete_despite_one_kill(self, engine, stack):
        cluster, master, runtime, provisioner = stack
        provisioner.create_workers(3)
        tasks = bag(12, execute_s=50.0)
        master.submit_many(tasks)
        engine.run(until=30.0)
        victim = provisioner.running_pods()[0]
        cluster.api.delete("Pod", victim.name)
        provisioner.create_workers(1)  # replacement
        engine.run(until=2000.0)
        assert all(t.state is TaskState.DONE for t in tasks)
        assert master.tasks_requeued >= 1

    def test_no_task_runs_twice_concurrently(self, engine, stack):
        cluster, master, runtime, provisioner = stack
        provisioner.create_workers(2)
        tasks = bag(6, execute_s=100.0)
        master.submit_many(tasks)
        engine.run(until=30.0)
        victim = provisioner.running_pods()[0]
        cluster.api.delete("Pod", victim.name)
        engine.run(until=35.0)
        # Requeued tasks must be WAITING, not tracked as running anywhere.
        running_ids = {t.id for t in master.running_tasks()}
        waiting_ids = {t.id for t in master.waiting_tasks()}
        assert not (running_ids & waiting_ids)

    def test_attempts_counter_increments(self, engine, stack):
        cluster, master, runtime, provisioner = stack
        provisioner.create_workers(1)
        tasks = bag(3, execute_s=200.0)
        master.submit_many(tasks)
        engine.run(until=30.0)
        victim = provisioner.running_pods()[0]
        cluster.api.delete("Pod", victim.name)
        engine.run(until=31.0)
        assert any(t.attempts == 1 for t in tasks)

    def test_repeated_kills_still_converge(self, engine, stack):
        cluster, master, runtime, provisioner = stack
        provisioner.create_workers(2)
        tasks = bag(8, execute_s=40.0)
        master.submit_many(tasks)
        for delay in (20.0, 120.0):
            def kill():
                pods = provisioner.running_pods()
                if pods:
                    cluster.api.delete("Pod", pods[0].name)
                provisioner.create_workers(1)

            engine.call_in(delay, kill)
        engine.run(until=4000.0)
        assert all(t.state is TaskState.DONE for t in tasks)


class TestDrainUnderLoad:
    def test_drain_never_loses_tasks(self, engine, stack):
        cluster, master, runtime, provisioner = stack
        provisioner.create_workers(3)
        tasks = bag(9, execute_s=60.0)
        master.submit_many(tasks)
        engine.run(until=30.0)
        provisioner.drain_workers(2)
        provisioner.create_workers(2)
        engine.run(until=3000.0)
        assert all(t.state is TaskState.DONE for t in tasks)
        assert master.tasks_requeued == 0  # drain is non-disruptive

    def test_drained_pods_reach_succeeded_not_failed(self, engine, stack):
        cluster, master, runtime, provisioner = stack
        pods = provisioner.create_workers(2)
        tasks = bag(4, execute_s=30.0)
        master.submit_many(tasks)
        engine.run(until=20.0)
        provisioner.drain_all()
        engine.run(until=300.0)
        assert all(p.phase in (PodPhase.SUCCEEDED, PodPhase.FAILED) for p in pods)
        assert all(
            p.phase is PodPhase.SUCCEEDED for p in pods if p.started_time is not None
        )
