"""Unit tests for the fair-share link."""

from __future__ import annotations

import pytest

from repro.wq.link import Link


class TestSingleTransfer:
    def test_completion_time_is_size_over_capacity(self, engine):
        link = Link(engine, 100.0)
        done = []
        link.start_transfer("t", 500.0, on_complete=lambda t: done.append(engine.now))
        engine.run()
        assert done == [pytest.approx(5.0)]

    def test_zero_size_completes_immediately(self, engine):
        link = Link(engine, 100.0)
        done = []
        link.start_transfer("t", 0.0, on_complete=lambda t: done.append(engine.now))
        engine.run()
        assert done == [0.0]
        assert link.transfers_completed == 1

    def test_rate_cap_slows_transfer(self, engine):
        link = Link(engine, 100.0)
        done = []
        link.start_transfer(
            "t", 100.0, rate_cap_mbps=10.0, on_complete=lambda t: done.append(engine.now)
        )
        engine.run()
        assert done == [pytest.approx(10.0)]

    def test_negative_size_rejected(self, engine):
        with pytest.raises(ValueError):
            Link(engine, 100.0).start_transfer("t", -1.0)

    def test_invalid_capacity_rejected(self, engine):
        with pytest.raises(ValueError):
            Link(engine, 0.0)

    def test_invalid_rate_cap_rejected(self, engine):
        with pytest.raises(ValueError):
            Link(engine, 10.0).start_transfer("t", 1.0, rate_cap_mbps=0.0)

    def test_transfer_duration_recorded(self, engine):
        link = Link(engine, 50.0)
        t = link.start_transfer("t", 100.0)
        engine.run()
        assert t.done
        assert t.duration == pytest.approx(2.0)


class TestFairSharing:
    def test_two_equal_transfers_share_equally(self, engine):
        link = Link(engine, 100.0)
        finishes = {}
        for name in ("a", "b"):
            link.start_transfer(
                name, 100.0, on_complete=lambda t, n=name: finishes.__setitem__(n, engine.now)
            )
        engine.run()
        # Each gets 50 MB/s → both finish at 2 s.
        assert finishes["a"] == pytest.approx(2.0)
        assert finishes["b"] == pytest.approx(2.0)

    def test_late_joiner_slows_first_transfer(self, engine):
        link = Link(engine, 100.0)
        finishes = {}
        link.start_transfer(
            "early", 200.0, on_complete=lambda t: finishes.__setitem__("early", engine.now)
        )
        engine.call_in(
            1.0,
            lambda: link.start_transfer(
                "late", 100.0, on_complete=lambda t: finishes.__setitem__("late", engine.now)
            ),
        )
        engine.run()
        # early: 100 MB in first second, then 100 MB at 50 MB/s → t=3.
        assert finishes["early"] == pytest.approx(3.0)
        # late: 100 MB at 50 MB/s while sharing, then alone — it shares
        # until t=3 (100 MB done at 50 MB/s → exactly t=3 as well).
        assert finishes["late"] == pytest.approx(3.0)

    def test_completion_frees_bandwidth_for_survivors(self, engine):
        link = Link(engine, 100.0)
        finishes = {}
        link.start_transfer("small", 50.0, on_complete=lambda t: finishes.__setitem__("s", engine.now))
        link.start_transfer("big", 150.0, on_complete=lambda t: finishes.__setitem__("b", engine.now))
        engine.run()
        assert finishes["s"] == pytest.approx(1.0)  # 50 MB at 50 MB/s
        # big: 50 MB in the first second, then 100 MB at full 100 MB/s.
        assert finishes["b"] == pytest.approx(2.0)

    def test_water_filling_respects_caps(self, engine):
        link = Link(engine, 100.0)
        finishes = {}
        # One capped at 10: the other should get the residual 90.
        link.start_transfer("capped", 10.0, rate_cap_mbps=10.0,
                            on_complete=lambda t: finishes.__setitem__("c", engine.now))
        link.start_transfer("free", 90.0,
                            on_complete=lambda t: finishes.__setitem__("f", engine.now))
        engine.run()
        assert finishes["c"] == pytest.approx(1.0)
        assert finishes["f"] == pytest.approx(1.0)

    def test_bytes_moved_accounting(self, engine):
        link = Link(engine, 100.0)
        link.start_transfer("a", 120.0)
        link.start_transfer("b", 80.0)
        engine.run()
        assert link.bytes_moved_mb == pytest.approx(200.0)

    def test_active_count(self, engine):
        link = Link(engine, 100.0)
        link.start_transfer("a", 1000.0)
        link.start_transfer("b", 1000.0)
        assert link.active_count == 2
        engine.run()
        assert link.active_count == 0


class TestCancel:
    def test_cancel_stops_transfer_without_callback(self, engine):
        link = Link(engine, 100.0)
        done = []
        t = link.start_transfer("t", 100.0, on_complete=lambda _t: done.append(1))
        engine.call_in(0.5, link.cancel, t)
        engine.run()
        assert done == []
        assert t.cancelled

    def test_cancel_frees_bandwidth(self, engine):
        link = Link(engine, 100.0)
        finishes = {}
        t1 = link.start_transfer("a", 200.0)
        link.start_transfer("b", 150.0, on_complete=lambda t: finishes.__setitem__("b", engine.now))
        engine.call_in(1.0, link.cancel, t1)
        engine.run()
        # b: 50 MB in 1 s shared, then 100 MB alone → t=2.
        assert finishes["b"] == pytest.approx(2.0)

    def test_cancel_done_transfer_is_noop(self, engine):
        link = Link(engine, 100.0)
        t = link.start_transfer("t", 10.0)
        engine.run()
        link.cancel(t)
        assert t.done and not t.cancelled


class TestStreamOverhead:
    def test_effective_capacity_formula(self, engine):
        link = Link(engine, 500.0, per_stream_overhead=0.05)
        assert link.effective_capacity(1) == pytest.approx(500.0)
        assert link.effective_capacity(5) == pytest.approx(500.0 / 1.2)
        assert link.effective_capacity(0) == pytest.approx(500.0)

    def test_overhead_slows_concurrent_transfers(self, engine):
        link = Link(engine, 100.0, per_stream_overhead=1.0)
        done = []
        link.start_transfer("a", 50.0, on_complete=lambda t: done.append(engine.now))
        link.start_transfer("b", 50.0, on_complete=lambda t: done.append(engine.now))
        engine.run()
        # capacity/(1+1) = 50 total → 25 each → 2 s.
        assert done[0] == pytest.approx(2.0)

    def test_negative_overhead_rejected(self, engine):
        with pytest.raises(ValueError):
            Link(engine, 100.0, per_stream_overhead=-0.1)


class TestThroughputMetrics:
    def test_throughput_series_records_rates(self, engine):
        link = Link(engine, 100.0)
        link.start_transfer("t", 100.0)
        engine.run()
        assert link.throughput.value_at(0.5) == pytest.approx(100.0)
        assert link.throughput.value_at(1.5) == 0.0

    def test_mean_throughput_time_weighted(self, engine):
        link = Link(engine, 100.0)
        link.start_transfer("t", 100.0)
        engine.run(until=2.0)
        assert link.mean_throughput(0.0, 2.0) == pytest.approx(50.0)

    def test_busy_seconds(self, engine):
        link = Link(engine, 100.0)
        link.start_transfer("t", 100.0)
        engine.call_in(5.0, lambda: link.start_transfer("u", 100.0))
        engine.run(until=10.0)
        assert link.busy_seconds(0.0, 10.0) == pytest.approx(2.0)

    def test_mean_active_throughput_excludes_idle(self, engine):
        link = Link(engine, 100.0)
        link.start_transfer("t", 100.0)
        engine.run(until=10.0)
        assert link.mean_active_throughput(0.0, 10.0) == pytest.approx(100.0)

    def test_mean_active_throughput_zero_when_never_busy(self, engine):
        link = Link(engine, 100.0)
        assert link.mean_active_throughput(0.0, 10.0) == 0.0
