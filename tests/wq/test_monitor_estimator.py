"""Unit tests for the resource monitor and allocation estimators."""

from __future__ import annotations

import pytest

from repro.cluster.resources import ResourceVector
from repro.wq.estimator import (
    ConservativeEstimator,
    DeclaredResourceEstimator,
    MonitorEstimator,
)
from repro.wq.monitor import CategoryStats, ResourceMonitor
from repro.wq.task import Task, TaskResult

FOOT = ResourceVector(1, 900, 100)
WORKER = ResourceVector(3, 14 * 1024, 90 * 1024)


def make_result(category="align", execute_s=40.0, resources=FOOT, task_id=1):
    return TaskResult(
        task_id=task_id,
        category=category,
        worker_name="w",
        submit_time=0.0,
        dispatch_time=1.0,
        start_time=2.0,
        finish_time=2.0 + execute_s,
        execute_seconds=execute_s,
        measured_resources=resources,
        attempts=0,
    )


class TestCategoryStats:
    def test_observe_aggregates(self):
        s = CategoryStats("c")
        s.observe(10.0, FOOT)
        s.observe(30.0, FOOT.scale(2))
        assert s.count == 2
        assert s.mean_execute_s == pytest.approx(20.0)
        assert s.max_execute_s == 30.0
        assert s.min_execute_s == 10.0
        assert s.max_resources.cores == 2

    def test_estimates_none_when_empty(self):
        s = CategoryStats("c")
        assert s.resource_estimate() is None
        assert s.runtime_estimate() is None

    def test_safety_margin_scales_estimate(self):
        s = CategoryStats("c")
        s.observe(10.0, ResourceVector(1, 1000, 100))
        est = s.resource_estimate(safety_margin=0.1)
        assert est.cores == pytest.approx(1.1)
        assert est.memory_mb == pytest.approx(1100)


class TestResourceMonitor:
    def test_record_groups_by_category(self):
        m = ResourceMonitor()
        m.record(make_result("a"))
        m.record(make_result("b"))
        m.record(make_result("a"))
        assert m.category("a").count == 2
        assert m.category("b").count == 1
        assert set(m.categories()) == {"a", "b"}

    def test_has_estimate(self):
        m = ResourceMonitor()
        assert not m.has_estimate("a")
        m.record(make_result("a"))
        assert m.has_estimate("a")

    def test_estimates_reflect_observed_max(self):
        m = ResourceMonitor()
        m.record(make_result("a", resources=ResourceVector(1, 500, 100)))
        m.record(make_result("a", resources=ResourceVector(1, 900, 50)))
        est = m.resource_estimate("a")
        assert est.memory_mb == 900
        assert est.disk_mb == 100

    def test_runtime_estimate_is_mean(self):
        m = ResourceMonitor()
        m.record(make_result("a", execute_s=10))
        m.record(make_result("a", execute_s=30))
        assert m.runtime_estimate("a") == pytest.approx(20.0)

    def test_mean_turnaround(self):
        m = ResourceMonitor()
        m.record(make_result("a", execute_s=10))
        assert m.mean_turnaround() == pytest.approx(12.0)

    def test_negative_margin_rejected(self):
        with pytest.raises(ValueError):
            ResourceMonitor(safety_margin=-0.1)

    def test_completed_count(self):
        m = ResourceMonitor()
        for i in range(3):
            m.record(make_result(task_id=i))
        assert m.completed_count == 3


class TestEstimators:
    def test_conservative_always_whole_worker(self):
        task = Task("c", execute_s=1, footprint=FOOT, declared=FOOT)
        assert ConservativeEstimator().allocation_for(task, WORKER) is None

    def test_declared_uses_declaration(self):
        task = Task("c", execute_s=1, footprint=FOOT, declared=FOOT)
        assert DeclaredResourceEstimator().allocation_for(task, WORKER) == FOOT

    def test_declared_falls_back_to_whole_worker(self):
        task = Task("c", execute_s=1, footprint=FOOT)
        assert DeclaredResourceEstimator().allocation_for(task, WORKER) is None

    def test_monitor_prefers_declaration(self):
        m = ResourceMonitor()
        m.record(make_result("c", resources=FOOT.scale(2)))
        task = Task("c", execute_s=1, footprint=FOOT, declared=FOOT)
        assert MonitorEstimator(m).allocation_for(task, WORKER) == FOOT

    def test_monitor_uses_category_estimate(self):
        m = ResourceMonitor()
        m.record(make_result("c", resources=FOOT))
        task = Task("c", execute_s=1, footprint=FOOT)
        assert MonitorEstimator(m).allocation_for(task, WORKER) == FOOT

    def test_monitor_probes_unknown_category(self):
        m = ResourceMonitor()
        task = Task("new", execute_s=1, footprint=FOOT)
        assert MonitorEstimator(m).allocation_for(task, WORKER) is None

    def test_monitor_estimate_capped_at_worker(self):
        m = ResourceMonitor()
        m.record(make_result("c", resources=ResourceVector(8, 512, 0)))
        task = Task("c", execute_s=1, footprint=FOOT)
        # Estimate exceeds the worker: fall back to whole worker, never
        # an unschedulable over-allocation.
        assert MonitorEstimator(m).allocation_for(task, WORKER) is None
