"""Unit tests for tasks and file specs."""

from __future__ import annotations

import pytest

from repro.cluster.resources import ResourceVector
from repro.wq.task import FileSpec, Task, TaskState

FOOT = ResourceVector(1, 512, 256)


class TestFileSpec:
    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            FileSpec("f", -1.0)

    def test_cacheable_flag(self):
        assert FileSpec("db", 1400, cacheable=True).cacheable
        assert not FileSpec("q", 7).cacheable


class TestTaskConstruction:
    def test_ids_unique_and_increasing(self):
        a = Task("c", execute_s=1, footprint=FOOT)
        b = Task("c", execute_s=1, footprint=FOOT)
        assert b.id > a.id

    def test_negative_execute_rejected(self):
        with pytest.raises(ValueError):
            Task("c", execute_s=-1, footprint=FOOT)

    def test_cpu_fraction_bounds(self):
        with pytest.raises(ValueError):
            Task("c", execute_s=1, footprint=FOOT, cpu_fraction=1.5)
        with pytest.raises(ValueError):
            Task("c", execute_s=1, footprint=FOOT, cpu_fraction=-0.1)

    def test_zero_footprint_rejected(self):
        with pytest.raises(ValueError):
            Task("c", execute_s=1, footprint=ResourceVector.zero())

    def test_declaration_must_cover_footprint(self):
        with pytest.raises(ValueError):
            Task(
                "c",
                execute_s=1,
                footprint=ResourceVector(2, 512, 0),
                declared=ResourceVector(1, 512, 0),
            )

    def test_default_command_is_descriptive(self):
        t = Task("align", execute_s=1, footprint=FOOT)
        assert "align" in t.command

    def test_initial_state(self):
        t = Task("c", execute_s=1, footprint=FOOT)
        assert t.state is TaskState.WAITING
        assert t.attempts == 0
        assert t.result is None


class TestSizes:
    def test_input_bytes_total(self):
        t = Task(
            "c",
            execute_s=1,
            footprint=FOOT,
            inputs=(FileSpec("db", 1400, cacheable=True), FileSpec("q", 7)),
        )
        assert t.input_bytes_mb() == pytest.approx(1407.0)

    def test_input_bytes_cached_excludes_cacheable(self):
        t = Task(
            "c",
            execute_s=1,
            footprint=FOOT,
            inputs=(FileSpec("db", 1400, cacheable=True), FileSpec("q", 7)),
        )
        assert t.input_bytes_mb(cached=True) == pytest.approx(7.0)

    def test_output_bytes(self):
        t = Task("c", execute_s=1, footprint=FOOT, outputs=(FileSpec("o", 0.6),))
        assert t.output_bytes_mb() == pytest.approx(0.6)


class TestCpuModel:
    def test_no_cpu_unless_running(self):
        t = Task("c", execute_s=1, footprint=FOOT)
        assert t.current_cpu_cores() == 0.0

    def test_cpu_is_footprint_times_fraction(self):
        t = Task("c", execute_s=1, footprint=FOOT, cpu_fraction=0.15)
        t.state = TaskState.RUNNING
        t.allocation = ResourceVector(3, 1024, 1024)
        assert t.current_cpu_cores() == pytest.approx(0.15)

    def test_cpu_clamped_to_allocation(self):
        t = Task("c", execute_s=1, footprint=ResourceVector(4, 512, 0))
        t.state = TaskState.RUNNING
        t.allocation = ResourceVector(2, 1024, 1024)
        assert t.current_cpu_cores() == pytest.approx(2.0)


class TestRetry:
    def test_reset_for_retry_clears_run_state(self):
        t = Task("c", execute_s=1, footprint=FOOT)
        t.state = TaskState.RUNNING
        t.dispatch_time = 5.0
        t.start_time = 6.0
        t.allocation = FOOT
        t.reset_for_retry()
        assert t.state is TaskState.WAITING
        assert t.dispatch_time is None
        assert t.start_time is None
        assert t.allocation is None
