"""Unit tests for master pause/resume (the §V-A restart contract)."""

from __future__ import annotations

import pytest

from repro.cluster.resources import ResourceVector
from repro.wq.estimator import DeclaredResourceEstimator
from repro.wq.link import Link
from repro.wq.master import Master
from repro.wq.task import Task, TaskState
from repro.wq.worker import Worker

FOOT = ResourceVector(1, 512, 128)


@pytest.fixture
def master(engine):
    return Master(engine, Link(engine, 200.0), estimator=DeclaredResourceEstimator())


def make_task(execute_s=10.0):
    return Task("c", execute_s=execute_s, footprint=FOOT, declared=FOOT)


class TestPauseResume:
    def test_pause_stops_dispatch(self, engine, master):
        Worker(engine, master, "w1", ResourceVector(4, 4096, 4096))
        engine.run(until=2.0)
        master.pause()
        task = make_task()
        master.submit(task)
        engine.run(until=10.0)
        assert task.state is TaskState.WAITING

    def test_resume_dispatches_backlog(self, engine, master):
        Worker(engine, master, "w1", ResourceVector(4, 4096, 4096))
        engine.run(until=2.0)
        master.pause()
        task = make_task(execute_s=5.0)
        master.submit(task)
        engine.run(until=10.0)
        master.resume()
        engine.run(until=30.0)
        assert task.state is TaskState.DONE

    def test_completions_buffer_until_resume(self, engine, master):
        Worker(engine, master, "w1", ResourceVector(4, 4096, 4096))
        task = make_task(execute_s=5.0)
        master.submit(task)
        engine.run(until=3.0)  # dispatched, executing
        master.pause()
        engine.run(until=20.0)  # execution + output done during outage
        assert task.state is not TaskState.DONE
        assert master.stats().done == 0
        master.resume()
        engine.run(until=21.0)
        assert task.state is TaskState.DONE
        assert task.finish_time >= 20.0  # delivered at resume, not before

    def test_completion_callbacks_fire_after_resume(self, engine, master):
        Worker(engine, master, "w1", ResourceVector(4, 4096, 4096))
        seen = []
        master.on_complete(lambda t, r: seen.append(engine.now))
        task = make_task(execute_s=5.0)
        master.submit(task)
        engine.run(until=3.0)
        master.pause()
        engine.run(until=20.0)
        assert seen == []
        master.resume()
        engine.run(until=21.0)
        assert len(seen) == 1

    def test_outage_counter(self, engine, master):
        master.pause()
        master.pause()  # idempotent while down
        assert master.outages == 1
        master.resume()
        master.resume()  # idempotent while up
        master.pause()
        assert master.outages == 2

    def test_start_unavailable_counts_no_outage(self, engine):
        m = Master(engine, Link(engine, 10.0), start_available=False)
        assert not m.available
        assert m.outages == 0
        m.resume()
        assert m.available

    def test_worker_registration_survives_outage(self, engine, master):
        Worker(engine, master, "w1", ResourceVector(4, 4096, 4096))
        engine.run(until=2.0)
        master.pause()
        engine.run(until=5.0)
        master.resume()
        assert master.stats().workers_connected == 1
