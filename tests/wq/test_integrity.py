"""End-to-end result integrity: verification, quarantine, poison tasks.

The integrity layer (DESIGN.md §14): every delivered result and shipped
checkpoint carries a content digest; a corrupted result never reaches
COMPLETE — it burns an attempt and retries under the normal backoff
policy — and a corrupted checkpoint is discarded, the task resuming
from its last good banked progress. The per-worker health ledger turns
verification failures into quarantine (black-hole workers) or poison
verdicts (bad inputs), and the journal replays it all bit-faithfully.
"""

from __future__ import annotations

import pytest

from repro.cluster.resources import ResourceVector
from repro.sim.rng import RngRegistry
from repro.wq.estimator import DeclaredResourceEstimator
from repro.wq.faults import (
    BlackHoleProfile,
    RetryPolicy,
    SpeculationConfig,
    TaskFault,
    ValueFaultModel,
    ValueFaultProfile,
)
from repro.wq.health import HealthConfig, WorkerHealth
from repro.wq.link import Link
from repro.wq.master import Master
from repro.wq.migration import CheckpointSpec
from repro.wq.task import Task, TaskState
from repro.wq.worker import Worker

FOOT = ResourceVector(1, 512, 128)
BIG = ResourceVector(4, 4096, 4096)
CKPT = CheckpointSpec(interval_s=10.0, cost_s=1.0, size_mb=10.0)


class ScriptedValueFaults:
    """Pre-programmed corruption draws, optionally per-category."""

    def __init__(self, result=(), checkpoint=(), category=None):
        self.result = list(result)
        self.checkpoint = list(checkpoint)
        self.category = category

    def _pop(self, seq, task):
        if self.category is not None and task.category != self.category:
            return False
        return seq.pop(0) if seq else False

    def draw_result_corruption(self, task):
        return self._pop(self.result, task)

    def draw_checkpoint_corruption(self, task):
        return self._pop(self.checkpoint, task)


class FailOnce:
    """One transient failure at completion, then clean attempts."""

    def __init__(self):
        self.armed = True

    def draw(self, task, allocation):
        if self.armed:
            self.armed = False
            return TaskFault(kind="transient", at_fraction=1.0)
        return None


class FailCategory:
    """Every attempt of one category fails at completion (slowly)."""

    def __init__(self, category):
        self.category = category

    def draw(self, task, allocation):
        if task.category == self.category:
            return TaskFault(kind="transient", at_fraction=1.0)
        return None


def make_task(category="c", execute_s=10.0, checkpoint=None):
    return Task(
        category,
        execute_s=execute_s,
        footprint=FOOT,
        declared=FOOT,
        checkpoint=checkpoint,
    )


def make_master(engine, **kwargs):
    kwargs.setdefault("estimator", DeclaredResourceEstimator())
    return Master(engine, Link(engine, 200.0), **kwargs)


def run_until_running(engine, task, deadline=30.0):
    while engine.now < deadline and task.state is not TaskState.RUNNING:
        engine.run(until=engine.now + 0.5)
    assert task.state is TaskState.RUNNING
    return task.start_time


class TestValueFaultModel:
    def test_zero_probability_consumes_no_variates(self):
        model = ValueFaultModel(RngRegistry(1))
        task = make_task()
        for _ in range(10):
            assert not model.draw_result_corruption(task)
            assert not model.draw_checkpoint_corruption(task)
        assert model.draws == 0

    def test_certain_corruption(self):
        model = ValueFaultModel(
            RngRegistry(1),
            default=ValueFaultProfile(
                result_corruption_prob=1.0, checkpoint_corruption_prob=1.0
            ),
        )
        assert model.draw_result_corruption(make_task())
        assert model.draw_checkpoint_corruption(make_task())

    def test_probabilities_validated(self):
        with pytest.raises(ValueError):
            ValueFaultProfile(result_corruption_prob=1.5)
        with pytest.raises(ValueError):
            ValueFaultProfile(checkpoint_corruption_prob=-0.1)


class TestResultVerification:
    def test_corrupted_result_retries_after_backoff(self, engine):
        """A verify-fail burns an attempt and waits out the same backoff
        a transient failure would."""
        master = make_master(
            engine,
            value_faults=ScriptedValueFaults(result=[True]),
            retry_policy=RetryPolicy(base_backoff_s=8.0),
        )
        Worker(engine, master, "w1", BIG)
        task = make_task(execute_s=10.0)
        master.submit(task)
        engine.run(until=100.0)
        assert task.state is TaskState.DONE
        assert task.attempts == 1
        assert master.verify_fails == 1
        assert master.corrupted_completes == 0
        assert master.done.count(task) == 1
        assert not task.payload_corrupt  # the clean rerun won
        # Attempt 1 burned ~10 s, then 8 s backoff, then a clean 10 s run.
        assert task.finish_time >= 26.0
        assert master.wasted_core_s == pytest.approx(10.0 * FOOT.cores)
        assert master.clean_goodput_core_s() == master.goodput_core_s()
        assert "verify_fail" in [r.op for r in master.journal.records]

    def test_always_corrupt_task_abandoned_at_max_retries(self, engine):
        master = make_master(
            engine,
            value_faults=ScriptedValueFaults(result=[True] * 10),
            retry_policy=RetryPolicy(base_backoff_s=1.0),
            max_retries=2,
        )
        abandoned = []
        master.on_abandoned(abandoned.append)
        Worker(engine, master, "w1", BIG)
        task = make_task(execute_s=5.0)
        master.submit(task)
        engine.run(until=200.0)
        assert abandoned == [task]
        assert master.verify_fails == 3  # initial attempt + 2 retries
        assert master.corrupted_completes == 0
        assert task.state is not TaskState.DONE
        assert master.wasted_core_s == pytest.approx(3 * 5.0 * FOOT.cores)

    def test_verify_fail_and_transient_share_the_attempt_budget(self, engine):
        """Retry-boundary satellite: attempts consumed by VERIFY_FAIL and
        by transient faults draw down the same max_retries budget."""
        master = make_master(
            engine,
            fault_model=FailOnce(),
            value_faults=ScriptedValueFaults(result=[True]),
            retry_policy=RetryPolicy(base_backoff_s=0.0),
            max_retries=2,
        )
        Worker(engine, master, "w1", BIG)
        task = make_task(execute_s=10.0)
        master.submit(task)
        engine.run(until=200.0)
        # Attempt 1: transient fail. Attempt 2: corrupted. Attempt 3: clean
        # — landing exactly on the max_retries=2 boundary.
        assert task.state is TaskState.DONE
        assert task.attempts == 2
        assert master.tasks_failed == 2
        assert master.verify_fails == 1
        assert master.abandoned == []

    def test_verification_off_lets_corruption_complete(self, engine):
        master = make_master(
            engine,
            value_faults=ScriptedValueFaults(result=[True]),
            verify=False,
        )
        Worker(engine, master, "w1", BIG)
        task = make_task(execute_s=10.0)
        master.submit(task)
        engine.run(until=100.0)
        assert task.state is TaskState.DONE
        assert master.verify_fails == 0
        assert master.corrupted_completes == 1
        assert master.goodput_core_s() == pytest.approx(10.0 * FOOT.cores)
        assert master.clean_goodput_core_s() == pytest.approx(0.0)

    def test_default_master_has_no_integrity_overhead(self, engine):
        """No value faults, no health: the integrity counters stay zero
        and draws consume nothing (bit-identity for existing runs)."""
        master = make_master(engine)
        Worker(engine, master, "w1", BIG)
        task = make_task()
        master.submit(task)
        engine.run(until=50.0)
        assert task.state is TaskState.DONE
        assert master.verify_fails == 0
        assert master.corrupted_completes == 0
        assert master.quarantines == 0
        assert not master.draw_result_corruption(task)
        assert not master.draw_checkpoint_corruption(task)


class TestCheckpointVerification:
    def test_corrupted_checkpoint_discarded_progress_preserved(self, engine):
        """A corrupted snapshot never banks: the task resumes from its
        last *good* banked progress and no attempt is burned."""
        master = make_master(
            engine,
            value_faults=ScriptedValueFaults(checkpoint=[False, True]),
        )
        w = Worker(engine, master, "w1", BIG, connect_latency=1.0)
        task = make_task(execute_s=100.0, checkpoint=CKPT)
        master.submit(task)
        start = run_until_running(engine, task)
        engine.run(until=start + 35.0)
        assert w.migrate_out(task)  # clean checkpoint: banks 30 s
        engine.run(until=engine.now + CKPT.cost_s + 1.0)
        assert master.migrations_accepted == 1
        assert task.progress_s == 30.0
        resumed = run_until_running(engine, task, deadline=engine.now + 30.0)
        engine.run(until=resumed + 35.0)
        assert w.migrate_out(task)  # corrupted checkpoint: discarded
        engine.run(until=engine.now + CKPT.cost_s + 1.0)
        assert master.checkpoint_verify_fails == 1
        assert master.migrations_accepted == 1  # not banked
        assert task.progress_s == 30.0  # last good progress preserved
        assert task.attempts == 0  # discard burns no attempt
        assert not task.checkpoint_corrupt
        ops = [r.op for r in master.journal.records]
        assert "verify_fail" in ops
        engine.run(until=engine.now + 200.0)
        assert task.state is TaskState.DONE
        assert master.done.count(task) == 1


class TestSpeculationVerification:
    CFG = SpeculationConfig(
        check_period_s=5.0, slowdown_factor=2.0, min_samples=3, min_age_s=5.0
    )

    def make_spec_master(self, engine, value_faults):
        master = make_master(
            engine,
            speculation=self.CFG,
            value_faults=value_faults,
            retry_policy=RetryPolicy(base_backoff_s=0.0),
        )
        Worker(engine, master, "w1", BIG)
        Worker(engine, master, "w2", BIG)
        return master

    def warm_up(self, engine, master, n=3):
        tasks = [make_task(execute_s=10.0) for _ in range(n)]
        master.submit_many(tasks)
        engine.run(until=engine.now + 60.0)
        assert all(t.state is TaskState.DONE for t in tasks)

    def test_canonical_verify_fail_cancels_the_clone(self, engine):
        """Satellite regression: when the canonical attempt's result
        fails verification, the in-flight speculative clone is cancelled
        with it — the retry starts from a clean slate."""
        # Draw order: 3 clean warm-ups, then the straggler's corrupted
        # attempt; the clone and the retry fall off the script (clean).
        faults = ScriptedValueFaults(result=[False] * 3 + [True])
        master = self.make_spec_master(engine, faults)
        self.warm_up(engine, master)
        # Slow enough to trigger speculation, fast enough to beat the
        # clone — and its payload is corrupted.
        original = make_task(execute_s=28.0)
        master.submit(original)
        deadline = engine.now + 40.0
        while engine.now < deadline and not master._spec:
            engine.run(until=engine.now + 1.0)
        assert master.tasks_speculated == 1
        assert original.id in master._spec  # clone in flight
        # The original finishes first — corrupted. The verify-fail must
        # take the clone down with it.
        engine.run(until=engine.now + 200.0)
        assert master.verify_fails == 1
        assert master.speculation_losses >= 1  # the cancelled clone
        assert master.corrupted_completes == 0
        assert original.state is TaskState.DONE
        assert master.done.count(original) == 1
        assert not master._spec
        assert all(not w.runs for w in master.workers.values())
        assert master.all_done

    def test_corrupt_clone_win_rejected_original_survives(self, engine):
        """A speculative clone that 'wins' with a corrupted payload is
        rejected; the original keeps running and completes."""
        # 3 clean warm-ups, a clean straggler attempt, a corrupt clone.
        faults = ScriptedValueFaults(result=[False] * 4 + [True])
        master = self.make_spec_master(engine, faults)
        self.warm_up(engine, master)
        straggler = make_task(execute_s=500.0)
        master.submit(straggler)
        engine.run(until=engine.now + 700.0)
        # The corrupt clone's "win" was rejected (a later clean clone or
        # the original itself may still finish the task).
        assert master.tasks_speculated >= 1
        assert master.verify_fails == 1
        assert master.corrupted_completes == 0
        assert straggler.state is TaskState.DONE
        assert master.done.count(straggler) == 1
        assert master.all_done


class TestBlackHoleQuarantine:
    def test_fast_fail_black_hole_quarantined_and_evacuated(self, engine):
        master = make_master(
            engine,
            health=HealthConfig(fast_fail_window=2, probation_after_s=300.0),
            retry_policy=RetryPolicy(base_backoff_s=0.0),
            max_retries=10,
        )
        bh = Worker(engine, master, "bh", BIG, connect_latency=1.0)
        Worker(engine, master, "ok", ResourceVector(1, 4096, 4096), connect_latency=1.0)
        bh.black_hole = BlackHoleProfile(mode="fast-fail", latency_s=1.0)
        tasks = [make_task(execute_s=10.0) for _ in range(6)]
        master.submit_many(tasks)
        engine.run(until=100.0)
        assert bh.quarantined
        assert master.quarantines == 1
        assert master.health.state("bh") is WorkerHealth.QUARANTINED
        assert not bh.runs  # evacuated, nothing re-dispatched to it
        assert all(t.state is TaskState.DONE for t in tasks)
        assert all(master.done.count(t) == 1 for t in tasks)
        # Quarantined supply is dead supply.
        assert master.supplied_cores() == 1
        ops = [r.op for r in master.journal.records]
        assert "quarantine" in ops

    def test_fast_fake_black_hole_caught_by_verification(self, engine):
        """Fast-fake is the nastier mode: the black hole 'completes'
        every task in ~1 s with garbage. Verification + the ledger must
        keep every corrupted result out of COMPLETE."""
        master = make_master(
            engine,
            health=HealthConfig(fast_fail_window=2, probation_after_s=300.0),
            retry_policy=RetryPolicy(base_backoff_s=0.0),
            max_retries=10,
        )
        bh = Worker(engine, master, "bh", BIG, connect_latency=1.0)
        Worker(engine, master, "ok", ResourceVector(1, 4096, 4096), connect_latency=1.0)
        bh.black_hole = BlackHoleProfile(mode="fast-fake", latency_s=1.0)
        tasks = [make_task(execute_s=10.0) for _ in range(6)]
        master.submit_many(tasks)
        engine.run(until=200.0)
        assert master.corrupted_completes == 0
        assert master.verify_fails >= 2
        assert master.quarantines == 1
        assert bh.quarantined
        assert all(t.state is TaskState.DONE for t in tasks)
        assert all(master.done.count(t) == 1 for t in tasks)
        assert master.clean_goodput_core_s() == master.goodput_core_s()

    def test_probation_readmits_a_recovered_worker(self, engine):
        master = make_master(
            engine,
            health=HealthConfig(
                fast_fail_window=2, probation_after_s=60.0, probation_successes=1
            ),
            retry_policy=RetryPolicy(base_backoff_s=0.0),
            max_retries=10,
        )
        bh = Worker(engine, master, "bh", BIG, connect_latency=1.0)
        Worker(engine, master, "ok", ResourceVector(1, 4096, 4096), connect_latency=1.0)
        bh.black_hole = BlackHoleProfile(mode="fast-fail", latency_s=1.0)
        master.submit_many([make_task(execute_s=10.0) for _ in range(4)])
        engine.run(until=30.0)
        assert bh.quarantined
        quarantined_at_least_until = engine.now
        bh.black_hole = None  # the node was repaired while quarantined
        engine.run(until=quarantined_at_least_until + 120.0)
        # Probation re-admitted it and nothing failed since.
        assert not bh.quarantined
        assert master.unquarantines == 1
        late = make_task(execute_s=10.0)
        master.submit(late)
        engine.run(until=engine.now + 60.0)
        assert late.state is TaskState.DONE
        ops = [r.op for r in master.journal.records]
        assert "unquarantine" in ops

    def test_requarantine_on_probation_failure(self, engine):
        """A black hole that stays sick flunks probation on its first
        failure and goes straight back into quarantine."""
        master = make_master(
            engine,
            health=HealthConfig(fast_fail_window=2, probation_after_s=30.0),
            retry_policy=RetryPolicy(base_backoff_s=0.0),
            max_retries=50,
        )
        bh = Worker(engine, master, "bh", BIG, connect_latency=1.0)
        Worker(engine, master, "ok", ResourceVector(1, 4096, 4096), connect_latency=1.0)
        bh.black_hole = BlackHoleProfile(mode="fast-fail", latency_s=1.0)
        tasks = [make_task(execute_s=30.0) for _ in range(8)]
        master.submit_many(tasks)
        engine.run(until=400.0)
        assert master.quarantines >= 2  # initial + at least one relapse
        assert master.unquarantines >= 1
        assert all(t.state is TaskState.DONE for t in tasks)
        # Strict alternation: never two quarantines (or unquarantines)
        # in a row for the same worker.
        state = None
        for rec in master.journal.records:
            if rec.op == "quarantine":
                assert state in (None, "out")
                state = "in"
            elif rec.op == "unquarantine":
                assert state == "in"
                state = "out"


class TestPoisonTaskIsolation:
    def test_poison_task_isolated_after_k_healthy_workers(self, engine):
        master = make_master(
            engine,
            fault_model=FailCategory("bad"),
            health=HealthConfig(poison_k=2, fast_fail_window=100),
            retry_policy=RetryPolicy(base_backoff_s=0.0),
            max_retries=10,
        )
        abandoned = []
        master.on_abandoned(abandoned.append)
        w1 = Worker(engine, master, "w1", BIG, connect_latency=1.0)
        task = make_task(category="bad", execute_s=10.0)
        master.submit(task)
        engine.run(until=15.0)  # attempt 1 failed on then-healthy w1
        assert master.tasks_poisoned == 0
        w1.kill()  # force the retry onto a second distinct worker
        Worker(engine, master, "w2", BIG, connect_latency=1.0)
        engine.run(until=100.0)
        # Two distinct healthy workers failed it: poison verdict.
        assert master.tasks_poisoned == 1
        assert abandoned == [task]
        assert task in master.abandoned
        assert master.escalations >= 1  # exhaustion-style escalation
        assert task.min_allocation is not None
        assert "escalate" in [r.op for r in master.journal.records]
        # Isolated: a fresh worker never picks it back up.
        engine.run(until=engine.now + 30.0)
        assert master.stats().running == 0

    def test_good_tasks_unaffected_by_poison_neighbour(self, engine):
        master = make_master(
            engine,
            fault_model=FailCategory("bad"),
            health=HealthConfig(poison_k=2, fast_fail_window=100),
            retry_policy=RetryPolicy(base_backoff_s=0.0),
            max_retries=10,
        )
        w1 = Worker(engine, master, "w1", BIG, connect_latency=1.0)
        poison = make_task(category="bad", execute_s=10.0)
        good = [make_task(execute_s=10.0) for _ in range(3)]
        master.submit_many([poison] + good)
        engine.run(until=15.0)
        w1.kill()
        Worker(engine, master, "w2", BIG, connect_latency=1.0)
        engine.run(until=200.0)
        assert master.tasks_poisoned == 1
        assert all(t.state is TaskState.DONE for t in good)
        # The workers that failed the poison task were never blamed.
        assert master.quarantines == 0


class TestQuarantineRejection:
    def test_partition_held_result_rejected_exactly_once(self, engine):
        """Satellite: a worker quarantined while partitioned re-delivers
        its held result after the heal; the delivery is rejected exactly
        once and the task still completes exactly once elsewhere."""
        master = make_master(engine, health=HealthConfig())
        w1 = Worker(engine, master, "w1", BIG, connect_latency=1.0)
        task = make_task(execute_s=20.0)
        master.submit(task)
        run_until_running(engine, task)
        # Partition w1; it finishes the task mid-partition and holds the
        # result.
        w1.partition()
        master.worker_unreachable(w1)
        engine.run(until=engine.now + 25.0)
        assert task.state is TaskState.RETURNING  # finished, undelivered
        # The ledger condemns the worker while it is unreachable. The
        # evacuation cannot reach the already-finished run — only the
        # delivery-time rejection can.
        master._quarantine_worker(w1)
        assert master.quarantines == 1
        Worker(engine, master, "w2", BIG, connect_latency=1.0)
        engine.run(until=engine.now + 10.0)
        assert task.state is not TaskState.DONE  # result still held
        # Heal: the quarantined worker delivers its held result. It is
        # rejected exactly once and the task requeues to a clean worker.
        w1.heal()
        engine.run(until=engine.now + 60.0)
        assert master.quarantined_rejected == 1
        assert task.state is TaskState.DONE
        assert master.done.count(task) == 1  # exactly once, on w2
        assert master.all_done


class TestQuarantineReplay:
    def test_same_tick_quarantine_evacuation_is_replay_deterministic(
        self, engine
    ):
        """Satellite: a quarantine sweep pulling several runs in one tick
        requeues them in submit order, and journal replay reconstructs
        the same queue record for record."""
        master = make_master(engine, health=HealthConfig())
        w = Worker(engine, master, "w1", BIG, connect_latency=1.0)
        tasks = [make_task(execute_s=300.0) for _ in range(4)]
        master.submit_many(tasks)
        engine.run(until=30.0)
        assert all(t.id in w.runs for t in tasks)
        master._quarantine_worker(w)
        queue_ids = [t.id for t in master.queue]
        assert queue_ids == sorted(t.id for t in tasks)  # submit order
        replayed = master.journal.replay()
        assert [t.id for t in replayed.ready] == queue_ids
        assert "w1" in replayed.quarantined
        assert all(t.attempts == 0 for t in tasks)  # evacuation burns none

    def test_crash_recovery_preserves_quarantine(self, engine):
        """The journal carries QUARANTINE across a master crash: the
        reconnecting worker comes back condemned, takes no work, and its
        probation clock restarts."""
        master = make_master(
            engine,
            health=HealthConfig(fast_fail_window=2, probation_after_s=500.0),
            retry_policy=RetryPolicy(base_backoff_s=0.0),
            max_retries=10,
        )
        bh = Worker(engine, master, "bh", BIG, connect_latency=1.0)
        ok = Worker(engine, master, "ok", ResourceVector(1, 4096, 4096), connect_latency=1.0)
        bh.black_hole = BlackHoleProfile(mode="fast-fail", latency_s=1.0)
        tasks = [make_task(execute_s=15.0) for _ in range(5)]
        master.submit_many(tasks)
        engine.run(until=30.0)
        assert bh.quarantined
        master.crash(restart_delay_s=5.0)
        engine.run(until=engine.now + 30.0)
        # Reconnected and still condemned — both flag and ledger agree.
        assert bh.quarantined
        assert master.health.state("bh") is WorkerHealth.QUARANTINED
        assert not bh.runs
        engine.run(until=engine.now + 300.0)
        assert all(t.state is TaskState.DONE for t in tasks)
        assert all(master.done.count(t) == 1 for t in tasks)
        assert ok.state is not None  # the healthy worker did the work
