"""Checkpoint/restore migration: handshake, at-most-once, policies.

The migration protocol (DESIGN.md §13): a running task pauses, cuts a
snapshot (cost), ships it over the master link, and the master — behind
the same at-most-once guards that protect result delivery — banks the
progress, requeues the task at the queue front without burning an
attempt, and the next dispatch resumes from the banked progress. The
coordinator paces drains under Megaphone's sudden / fluid /
batched-fluid policies and falls back to plain evacuation when a
checkpoint cannot fit the drain deadline.
"""

from __future__ import annotations

import pytest

from repro.cluster.resources import ResourceVector
from repro.wq.estimator import DeclaredResourceEstimator
from repro.wq.faults import SpeculationConfig
from repro.wq.link import Link
from repro.wq.master import Master
from repro.wq.migration import CheckpointSpec, MigrationConfig, MigrationCoordinator
from repro.wq.task import Task, TaskState
from repro.wq.worker import Worker

FOOT = ResourceVector(1, 512, 128)
CAP = ResourceVector(4, 4096, 4096)
SPEC = CheckpointSpec(interval_s=10.0, cost_s=1.0, size_mb=10.0)


def make_master(engine, **kwargs):
    kwargs.setdefault("estimator", DeclaredResourceEstimator())
    return Master(engine, Link(engine, 100.0), **kwargs)


def make_task(execute_s=100.0, checkpoint=SPEC, declared=None):
    return Task(
        "c",
        execute_s=execute_s,
        footprint=FOOT,
        declared=declared if declared is not None else FOOT,
        checkpoint=checkpoint,
    )


def run_until_running(engine, task, deadline=30.0):
    while engine.now < deadline and task.state is not TaskState.RUNNING:
        engine.run(until=engine.now + 0.5)
    assert task.state is TaskState.RUNNING
    return task.start_time


class TestCheckpointSpec:
    def test_banked_progress_floors_to_interval(self):
        spec = CheckpointSpec(interval_s=30.0)
        assert spec.banked_progress(0.0) == 0.0
        assert spec.banked_progress(29.9) == 0.0
        assert spec.banked_progress(30.0) == 30.0
        assert spec.banked_progress(75.0) == 60.0

    def test_zero_interval_banks_everything(self):
        spec = CheckpointSpec(interval_s=0.0)
        assert spec.banked_progress(42.5) == 42.5

    def test_validation(self):
        with pytest.raises(ValueError):
            CheckpointSpec(interval_s=-1.0)
        with pytest.raises(ValueError):
            CheckpointSpec(cost_s=-0.1)
        with pytest.raises(ValueError):
            MigrationConfig(policy="nope")
        with pytest.raises(ValueError):
            MigrationConfig(batch_size=0)
        with pytest.raises(ValueError):
            MigrationConfig(policy_for_reason={"preemption": "bogus"})


class TestHandshake:
    def test_migrate_resumes_with_banked_progress(self, engine):
        """Pause → cut → ship → requeue-with-progress → resume: the task
        re-executes only its unbanked tail, and the journal carries
        CHECKPOINT/MIGRATE_OUT/MIGRATE_IN so replay is bit-faithful."""
        master = make_master(engine)
        w = Worker(engine, master, "w1", CAP, connect_latency=1.0)
        task = make_task(execute_s=100.0)
        master.submit(task)
        start = run_until_running(engine, task)
        engine.run(until=start + 35.0)
        elapsed = engine.now - task.start_time
        banked = SPEC.banked_progress(elapsed)
        assert banked == 30.0
        assert w.migrate_out(task)
        assert task.state is TaskState.MIGRATING
        # Paused: a migrating run burns no CPU while it snapshots.
        assert task.current_cpu_cores() == 0.0
        engine.run(until=engine.now + SPEC.cost_s + 1.0)  # cut + ship
        assert master.migrations_accepted == 1
        assert task.progress_s == banked
        assert task.attempts == 0  # migration is voluntary, no retry burned
        # Only the unbanked tail was charged as waste.
        assert master.wasted_core_s == pytest.approx(
            (elapsed - banked) * FOOT.cores
        )
        # Resume: remaining work is 70 s, not 100 s.
        assert task.remaining_execute_s() == pytest.approx(70.0)
        resumed_at = engine.now
        engine.run(until=resumed_at + 85.0)
        assert task.state is TaskState.DONE
        assert sum(1 for t in master.done if t.id == task.id) == 1
        ops = [r.op for r in master.journal.records]
        assert "checkpoint" in ops and "migrate_out" in ops and "migrate_in" in ops
        # Replay folds the migration records back exactly: the task is
        # complete, nothing ready/unclaimed, progress banked.
        state = master.journal.replay()
        assert [t.id for t, _ in state.completions] == [task.id]
        assert not state.ready and not state.unclaimed
        assert state.progress[task.id] == banked

    def test_migrate_out_rejects_ineligible_tasks(self, engine):
        master = make_master(engine)
        w = Worker(engine, master, "w1", CAP, connect_latency=1.0)
        plain = make_task(checkpoint=None)
        master.submit(plain)
        run_until_running(engine, plain)
        assert not w.migrate_out(plain)  # no checkpoint spec
        stranger = make_task()
        assert not w.migrate_out(stranger)  # not on this worker

    def test_nothing_banked_before_first_interval(self, engine):
        """A snapshot cut before the first checkpoint interval banks
        zero progress and charges the whole elapsed time as waste."""
        master = make_master(engine)
        w = Worker(engine, master, "w1", CAP, connect_latency=1.0)
        task = make_task(execute_s=100.0)
        master.submit(task)
        start = run_until_running(engine, task)
        engine.run(until=start + 5.0)  # < interval_s
        assert w.migrate_out(task)
        engine.run(until=engine.now + SPEC.cost_s + 1.0)
        assert master.migrations_accepted == 1
        assert task.progress_s == 0.0
        assert master.wasted_core_s == pytest.approx(5.0 * FOOT.cores)

    def test_kill_mid_snapshot_degrades_to_worker_lost(self, engine):
        """The worker dies between cut and ship: the checkpoint is lost
        and the plain worker-lost path requeues the task from its last
        accepted progress (zero here) with an attempt burned."""
        master = make_master(engine)
        w = Worker(engine, master, "w1", CAP, connect_latency=1.0)
        task = make_task(execute_s=100.0)
        master.submit(task)
        start = run_until_running(engine, task)
        engine.run(until=start + 15.0)
        assert w.migrate_out(task)
        w.kill()
        assert master.migrations_accepted == 0
        assert task.progress_s == 0.0
        assert task.attempts == 1  # a kill is a failure, not a migration
        Worker(engine, master, "w2", CAP, connect_latency=1.0)
        engine.run(until=engine.now + 150.0)
        assert task.state is TaskState.DONE
        assert sum(1 for t in master.done if t.id == task.id) == 1


class TestAtMostOnce:
    def test_duplicate_delivery_dropped_as_stale(self, engine):
        """Replaying an already-accepted checkpoint must not double-bank
        or double-requeue: the task is no longer canonical on the
        delivering worker."""
        master = make_master(engine)
        w = Worker(engine, master, "w1", CAP, connect_latency=1.0)
        task = make_task(execute_s=100.0)
        master.submit(task)
        start = run_until_running(engine, task)
        engine.run(until=start + 12.0)
        assert w.migrate_out(task)
        engine.run(until=engine.now + SPEC.cost_s + 1.0)
        assert master.migrations_accepted == 1
        records_before = len(master.journal)
        assert not master.migration_arrived(w, task, 50.0, 0.0)
        assert master.migrations_stale == 1
        assert task.progress_s == 10.0  # untouched by the duplicate
        assert len(master.journal) == records_before

    def test_checkpoint_from_superseded_attempt_dropped(self, engine):
        """The task was re-dispatched to another worker; a late
        checkpoint from the original attempt trips the
        ``_running_elsewhere`` guard and must not unseat the live run."""
        master = make_master(engine)
        w1 = Worker(engine, master, "w1", CAP, connect_latency=1.0)
        task = make_task(execute_s=100.0)
        master.submit(task)
        start = run_until_running(engine, task)
        engine.run(until=start + 12.0)
        assert w1.migrate_out(task)
        engine.run(until=engine.now + SPEC.cost_s + 1.0)
        assert master.migrations_accepted == 1
        # The task resumed (same worker — it never drained).
        run_until_running(engine, task, deadline=engine.now + 30.0)
        host = next(w for w in master.workers.values() if task.id in w.runs)
        w_other = Worker(engine, master, "w_other", CAP, connect_latency=1.0)
        engine.run(until=engine.now + 2.0)
        assert not master.migration_arrived(w_other, task, 90.0, 0.0)
        assert master.migrations_stale == 1
        assert task.id in host.runs  # live run untouched
        engine.run(until=engine.now + 150.0)
        assert sum(1 for t in master.done if t.id == task.id) == 1


class TestSpeculationInterplay:
    CFG = SpeculationConfig(
        check_period_s=5.0, slowdown_factor=2.0, min_samples=3, min_age_s=5.0
    )

    def test_accepted_migration_cancels_speculative_clone(self, engine):
        """Satellite regression: a live speculative clone of a migrating
        task must die when the checkpoint is accepted — otherwise
        first-completion-wins lets the clone complete the task while the
        resumed attempt re-runs it (double completion)."""
        master = make_master(engine, speculation=self.CFG)
        Worker(engine, master, "w1", CAP, connect_latency=1.0)
        Worker(engine, master, "w2", CAP, connect_latency=1.0)
        warm = [make_task(execute_s=10.0, checkpoint=None) for _ in range(3)]
        master.submit_many(warm)
        engine.run(until=engine.now + 60.0)
        assert all(t.state is TaskState.DONE for t in warm)
        straggler = make_task(execute_s=500.0, checkpoint=CheckpointSpec(5.0, 1.0, 10.0))
        master.submit(straggler)
        deadline = engine.now + 120.0
        while engine.now < deadline and master.tasks_speculated == 0:
            engine.run(until=engine.now + 1.0)
        assert master.tasks_speculated == 1
        assert straggler.id in master._spec
        host = next(w for w in master.workers.values() if straggler.id in w.runs)
        assert host.migrate_out(straggler)
        engine.run(until=engine.now + 2.5)  # cut (1 s) + ship (~0.1 s)
        assert master.migrations_accepted == 1
        # The clone was cancelled with the acceptance.
        assert straggler.id not in master._spec
        assert master.speculation_wins == 0
        engine.run(until=engine.now + 600.0)
        assert straggler.state is TaskState.DONE
        assert sum(1 for t in master.done if t.id == straggler.id) == 1
        assert straggler.progress_s > 0  # it really did resume from a snapshot


class TestCoordinatorPolicies:
    def setup_drain(self, engine, n_tasks=3, config=None, execute_s=200.0):
        master = make_master(engine)
        w = Worker(engine, master, "w1", CAP, connect_latency=1.0)
        coordinator = MigrationCoordinator(engine, master, config)
        tasks = [make_task(execute_s=execute_s) for _ in range(n_tasks)]
        master.submit_many(tasks)
        for task in tasks:
            run_until_running(engine, task)
        engine.run(until=engine.now + 15.0)  # everyone past one interval
        return master, w, coordinator, tasks

    def migrating(self, tasks):
        return [t for t in tasks if t.state is TaskState.MIGRATING]

    def test_sudden_snapshots_everything_at_once(self, engine):
        master, w, coord, tasks = self.setup_drain(
            engine, config=MigrationConfig(policy="sudden")
        )
        assert coord.drain_worker(w, reason="scale_down") == 3
        assert len(self.migrating(tasks)) == 3
        engine.run(until=engine.now + 30.0)
        assert coord.migrations_completed == 3
        assert master.migrations_accepted == 3

    def test_fluid_snapshots_one_at_a_time(self, engine):
        master, w, coord, tasks = self.setup_drain(
            engine, config=MigrationConfig(policy="fluid")
        )
        assert coord.drain_worker(w, reason="scale_down") == 3
        assert len(self.migrating(tasks)) == 1
        engine.run(until=engine.now + 30.0)
        assert coord.migrations_completed == 3

    def test_batched_fluid_snapshots_batch_size(self, engine):
        master, w, coord, tasks = self.setup_drain(
            engine, config=MigrationConfig(policy="batched-fluid", batch_size=2)
        )
        assert coord.drain_worker(w, reason="scale_down") == 3
        assert len(self.migrating(tasks)) == 2
        engine.run(until=engine.now + 30.0)
        assert coord.migrations_completed == 3

    def test_policy_for_reason_overrides_default(self, engine):
        config = MigrationConfig(
            policy="fluid", policy_for_reason={"preemption": "sudden"}
        )
        master, w, coord, tasks = self.setup_drain(engine, config=config)
        assert coord.drain_worker(w, reason="preemption") == 3
        assert len(self.migrating(tasks)) == 3  # sudden, not fluid

    def test_deadline_too_short_falls_back_to_evacuation(self, engine):
        """When the estimated snapshot+ship time exceeds the remaining
        notice, the coordinator must not start a doomed checkpoint —
        the tasks requeue from scratch instead (kill-and-requeue)."""
        master, w, coord, tasks = self.setup_drain(engine)
        # Budget below even one checkpoint's estimate.
        assert coord.drain_worker(w, reason="preemption", deadline_s=0.5) == 0
        assert coord.migration_fallbacks == 3
        assert master.tasks_evacuated == 3
        assert master.migrations_accepted == 0
        assert all(t.progress_s == 0.0 for t in tasks)

    def test_fluid_budget_accounts_for_queueing_ahead(self, engine):
        """Fluid pacing ships sequentially, so the budget check charges
        each task for everything queued ahead: a deadline that fits one
        checkpoint but not three migrates one and evacuates two."""
        config = MigrationConfig(policy="fluid", deadline_margin=1.0)
        master, w, coord, tasks = self.setup_drain(engine, config=config)
        estimate = coord.estimate_checkpoint_s(tasks[0])
        assert coord.drain_worker(
            w, reason="scale_down", deadline_s=estimate * 1.5
        ) == 1
        assert coord.migration_fallbacks == 2
        assert master.tasks_evacuated == 2

    def test_worker_death_mid_drain_aborts_cleanly(self, engine):
        master, w, coord, tasks = self.setup_drain(
            engine, config=MigrationConfig(policy="fluid")
        )
        assert coord.drain_worker(w, reason="scale_down") == 3
        w.kill()
        engine.run(until=engine.now + 30.0)
        # Nothing stuck: the drain record is gone and the worker-lost
        # path owns the requeue (attempts burned, no double resume).
        assert not coord._drains
        assert coord.migrations_completed == 0
        Worker(engine, master, "w2", CAP, connect_latency=1.0)
        engine.run(until=engine.now + 800.0)
        for task in tasks:
            assert task.state is TaskState.DONE
            assert sum(1 for t in master.done if t.id == task.id) == 1


class TestEvacuationOrder:
    def test_same_tick_multi_worker_evacuation_preserves_submit_order(
        self, engine
    ):
        """Satellite regression: when several workers evacuate in the
        same tick, the requeue must come out in submit (seq) order, not
        per-worker arrival order — and must match what journal replay
        reconstructs, record for record."""
        master = make_master(engine)
        small = ResourceVector(2, 4096, 4096)
        w1 = Worker(engine, master, "w1", small, connect_latency=1.0)
        w2 = Worker(engine, master, "w2", small, connect_latency=2.0)
        tasks = [make_task(execute_s=300.0) for _ in range(4)]
        master.submit_many(tasks)
        engine.run(until=30.0)
        placement = {
            t.id: next(w for w in (w1, w2) if t.id in w.runs) for t in tasks
        }
        assert {w1, w2} == set(placement.values())  # spread across both
        # Evacuate both workers' runs in one tick, workers interleaved
        # in worst-case (descending-id-last) order.
        pairs = sorted(
            ((placement[t.id], t) for t in tasks), key=lambda p: -p[1].id
        )
        requeued = master.evacuate(pairs)
        assert len(requeued) == 4
        queue_ids = [t.id for t in master.queue]
        assert queue_ids == sorted(t.id for t in tasks)  # submit order
        replayed = master.journal.replay()
        assert [t.id for t in replayed.ready] == queue_ids
        assert all(t.attempts == 0 for t in tasks)  # evacuation burns none


class TestReplayBitFidelity:
    def test_same_seeded_run_digests_equal_with_migrations(self, engine):
        """Two identical runs including a mid-flight migration produce
        bit-identical journals (digest equality), and replay agrees with
        the live ledgers."""

        def one_run():
            from repro.sim.engine import Engine

            eng = Engine()
            master = make_master(eng)
            w = Worker(eng, master, "w1", CAP, connect_latency=1.0)
            tasks = [make_task(execute_s=60.0) for _ in range(3)]
            master.submit_many(tasks)
            eng.run(until=25.0)
            for task in tasks:
                if task.state is TaskState.RUNNING:
                    w.migrate_out(task)
            eng.run(until=400.0)
            assert all(t.state is TaskState.DONE for t in tasks)
            state = master.journal.replay()
            assert [t.id for t, _ in state.completions] == [
                t.id for t in master.done
            ]
            assert not state.ready and not state.unclaimed
            return master.journal.digest()

        assert one_run() == one_run()
