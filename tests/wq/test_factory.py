"""Tests for the worker factory (batch-system-style elasticity)."""

from __future__ import annotations

import pytest

from repro.cluster.resources import ResourceVector
from repro.wq.estimator import DeclaredResourceEstimator
from repro.wq.factory import FactoryConfig, WorkerFactory
from repro.wq.link import Link
from repro.wq.master import Master
from repro.wq.task import Task, TaskState

CAP = ResourceVector(4, 8192, 8192)
FOOT = ResourceVector(1, 512, 128)


@pytest.fixture
def master(engine):
    return Master(engine, Link(engine, 200.0), estimator=DeclaredResourceEstimator())


def bag(n, execute_s=30.0):
    return [Task("c", execute_s=execute_s, footprint=FOOT, declared=FOOT) for _ in range(n)]


def make_factory(engine, master, **overrides):
    defaults = dict(
        min_workers=1,
        max_workers=5,
        tasks_per_worker=4.0,
        poll_interval_s=10.0,
        spawn_latency_s=5.0,
    )
    defaults.update(overrides)
    return WorkerFactory(engine, master, CAP, FactoryConfig(**defaults))


class TestConfig:
    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            FactoryConfig(min_workers=5, max_workers=2)
        with pytest.raises(ValueError):
            FactoryConfig(tasks_per_worker=0)
        with pytest.raises(ValueError):
            FactoryConfig(poll_interval_s=0)
        with pytest.raises(ValueError):
            FactoryConfig(spawn_latency_s=-1)


class TestScaling:
    def test_min_workers_maintained_when_idle(self, engine, master):
        factory = make_factory(engine, master, min_workers=2)
        engine.run(until=20.0)
        assert factory.live_count == 2
        assert master.stats().workers_connected == 2

    def test_scales_with_backlog(self, engine, master):
        factory = make_factory(engine, master)
        master.submit_many(bag(20, execute_s=100.0))
        engine.run(until=15.0)
        assert factory.live_count == 5  # ceil(20/4) = 5

    def test_capped_at_max(self, engine, master):
        factory = make_factory(engine, master, max_workers=3)
        master.submit_many(bag(100, execute_s=50.0))
        engine.run(until=15.0)
        assert factory.live_count == 3

    def test_drains_excess_after_queue_empties(self, engine, master):
        factory = make_factory(engine, master, min_workers=1)
        tasks = bag(20, execute_s=20.0)
        master.submit_many(tasks)
        engine.run(until=300.0)
        assert all(t.state is TaskState.DONE for t in tasks)
        assert factory.live_count == 1
        assert factory.workers_drained >= 1

    def test_tasks_complete_end_to_end(self, engine, master):
        factory = make_factory(engine, master)
        tasks = bag(12, execute_s=15.0)
        master.submit_many(tasks)
        engine.run(until=500.0)
        assert all(t.state is TaskState.DONE for t in tasks)

    def test_stop_with_drain(self, engine, master):
        factory = make_factory(engine, master, min_workers=2)
        engine.run(until=20.0)
        factory.stop(drain=True)
        engine.run(until=40.0)
        assert factory.live_count == 0
        assert master.stats().workers_connected == 0

    def test_spawn_latency_delays_connection(self, engine, master):
        factory = make_factory(engine, master, min_workers=1, spawn_latency_s=50.0)
        engine.run(until=20.0)
        assert master.stats().workers_connected == 0
        engine.run(until=60.0)
        assert master.stats().workers_connected == 1
