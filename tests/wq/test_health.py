"""Unit tests for the per-worker health ledger (pure bookkeeping)."""

from __future__ import annotations

import pytest

from repro.wq.health import (
    HealthConfig,
    HealthLedger,
    WorkerHealth,
)


def fail_fast(ledger, worker, task_id, now=0.0):
    """One failure well inside the fast-fail runtime window."""
    return ledger.record_failure(worker, task_id, runtime_s=1.0, now=now)


def fail_slow(ledger, worker, task_id, now=0.0):
    """One failure too slow to look like a black hole."""
    return ledger.record_failure(worker, task_id, runtime_s=100.0, now=now)


class TestConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            HealthConfig(ewma_alpha=0.0)
        with pytest.raises(ValueError):
            HealthConfig(min_samples=0)
        with pytest.raises(ValueError):
            HealthConfig(suspect_below=0.4, quarantine_below=0.5)
        with pytest.raises(ValueError):
            HealthConfig(fast_fail_window=0)
        with pytest.raises(ValueError):
            HealthConfig(fast_fail_runtime_s=-1.0)
        with pytest.raises(ValueError):
            HealthConfig(probation_after_s=-1.0)
        with pytest.raises(ValueError):
            HealthConfig(probation_successes=0)
        with pytest.raises(ValueError):
            HealthConfig(poison_k=0)


class TestFastFailDetector:
    def test_window_consecutive_fast_failures_quarantine(self):
        ledger = HealthLedger(HealthConfig(fast_fail_window=3))
        assert not fail_fast(ledger, "w", 1).quarantine_worker
        assert not fail_fast(ledger, "w", 2).quarantine_worker
        verdict = fail_fast(ledger, "w", 3, now=7.0)
        assert verdict.quarantine_worker
        assert ledger.is_quarantined("w")
        assert ledger.quarantines == 1

    def test_slow_failure_resets_the_streak(self):
        ledger = HealthLedger(HealthConfig(fast_fail_window=3))
        fail_fast(ledger, "w", 1)
        fail_fast(ledger, "w", 2)
        fail_slow(ledger, "w", 3)  # real failures are slow: streak broken
        assert not fail_fast(ledger, "w", 4).quarantine_worker

    def test_success_resets_the_streak(self):
        ledger = HealthLedger(HealthConfig(fast_fail_window=3))
        fail_fast(ledger, "w", 1)
        fail_fast(ledger, "w", 2)
        ledger.record_success("w", 99)
        assert not fail_fast(ledger, "w", 3).quarantine_worker

    def test_unknown_runtime_never_counts_as_fast(self):
        ledger = HealthLedger(HealthConfig(fast_fail_window=2))
        for task_id in range(5):
            verdict = ledger.record_failure("w", task_id, runtime_s=None)
        assert not verdict.quarantine_worker


class TestEwmaScore:
    def test_repeated_slow_failures_suspect_then_quarantine(self):
        # Default quarantine_below is crossed at exactly min_samples, so
        # widen the suspect band to observe the intermediate state.
        ledger = HealthLedger(HealthConfig(quarantine_below=0.1))
        states = []
        for task_id in range(8):
            fail_slow(ledger, "w", task_id)
            states.append(ledger.state("w"))
        assert WorkerHealth.SUSPECT in states
        assert states[-1] is WorkerHealth.QUARANTINED
        # Suspect strictly precedes quarantine.
        assert states.index(WorkerHealth.SUSPECT) < states.index(
            WorkerHealth.QUARANTINED
        )

    def test_score_not_trusted_before_min_samples(self):
        ledger = HealthLedger(HealthConfig(min_samples=5))
        for task_id in range(4):
            verdict = fail_slow(ledger, "w", task_id)
            assert not verdict.quarantine_worker
        assert ledger.state("w") is WorkerHealth.HEALTHY

    def test_successes_recover_a_suspect_worker(self):
        ledger = HealthLedger(HealthConfig(quarantine_below=0.1))
        while ledger.state("w") is WorkerHealth.HEALTHY:
            fail_slow(ledger, "w", 1)
        assert ledger.state("w") is WorkerHealth.SUSPECT
        while ledger.state("w") is WorkerHealth.SUSPECT:
            ledger.record_success("w", 2)
        assert ledger.state("w") is WorkerHealth.HEALTHY

    def test_unknown_worker_defaults_healthy(self):
        ledger = HealthLedger()
        assert ledger.state("nobody") is WorkerHealth.HEALTHY
        assert ledger.score("nobody") == 1.0
        assert not ledger.is_quarantined("nobody")


class TestProbation:
    def cfg(self):
        return HealthConfig(fast_fail_window=2, probation_successes=2)

    def quarantined(self):
        ledger = HealthLedger(self.cfg())
        fail_fast(ledger, "w", 1)
        fail_fast(ledger, "w", 2)
        assert ledger.is_quarantined("w")
        return ledger

    def test_begin_probation_only_from_quarantine(self):
        ledger = HealthLedger(self.cfg())
        assert not ledger.begin_probation("w")  # healthy: no-op
        ledger = self.quarantined()
        assert ledger.begin_probation("w")
        assert ledger.state("w") is WorkerHealth.PROBATION
        assert ledger.unquarantines == 1
        assert not ledger.begin_probation("w")  # already out

    def test_single_failure_on_probation_requarantines(self):
        ledger = self.quarantined()
        ledger.begin_probation("w")
        verdict = fail_slow(ledger, "w", 3)  # even a slow one
        assert verdict.quarantine_worker
        assert ledger.is_quarantined("w")
        assert ledger.quarantines == 2

    def test_probation_successes_restore_health(self):
        ledger = self.quarantined()
        ledger.begin_probation("w")
        ledger.record_success("w", 3)
        assert ledger.state("w") is WorkerHealth.PROBATION
        ledger.record_success("w", 4)
        assert ledger.state("w") is WorkerHealth.HEALTHY

    def test_restore_quarantine_counts_nothing(self):
        ledger = HealthLedger()
        ledger.restore_quarantine("w")
        assert ledger.is_quarantined("w")
        assert ledger.quarantines == 0  # replayed, not a new event

    def test_forget_worker_starts_over(self):
        ledger = self.quarantined()
        ledger.forget_worker("w")
        assert ledger.state("w") is WorkerHealth.HEALTHY
        assert ledger.score("w") == 1.0


class TestBlameAttribution:
    def cfg(self, k=3):
        return HealthConfig(poison_k=k, fast_fail_window=100)

    def test_poison_after_k_distinct_healthy_workers(self):
        ledger = HealthLedger(self.cfg(k=3))
        assert not fail_slow(ledger, "w1", 7).poison_task
        assert not fail_slow(ledger, "w2", 7).poison_task
        assert fail_slow(ledger, "w3", 7).poison_task
        assert ledger.is_poisoned(7)
        assert ledger.poison_verdicts == 1
        # The verdict fires exactly once.
        assert not fail_slow(ledger, "w4", 7).poison_task

    def test_repeat_failures_on_one_worker_do_not_poison(self):
        ledger = HealthLedger(self.cfg(k=2))
        for _ in range(5):
            verdict = fail_slow(ledger, "w1", 7)
        assert not verdict.poison_task

    def test_success_anywhere_clears_the_blame_row(self):
        ledger = HealthLedger(self.cfg(k=2))
        fail_slow(ledger, "w1", 7)
        ledger.record_success("w9", 7)  # completed elsewhere: not poison
        assert not fail_slow(ledger, "w2", 7).poison_task

    def test_failures_on_unhealthy_workers_never_indict(self):
        ledger = HealthLedger(self.cfg(k=2))
        # Drive w1 to suspect, then fail task 7 there: worker's fault.
        while ledger.state("w1") is WorkerHealth.HEALTHY:
            fail_slow(ledger, "w1", 1)
        fail_slow(ledger, "w1", 7)
        assert not fail_slow(ledger, "w2", 7).poison_task  # only 1 blame

    def test_quarantine_retracts_the_workers_testimony(self):
        """Regression: a task that bounced across several black holes
        before the detector caught them must not be ruled poison."""
        cfg = HealthConfig(poison_k=2, fast_fail_window=2)
        ledger = HealthLedger(cfg)
        fail_fast(ledger, "bh1", 7)  # bh1 healthy: blames task 7
        fail_fast(ledger, "bh1", 8)  # second fast fail: bh1 quarantined,
        assert ledger.is_quarantined("bh1")  # testimony retracted
        # Task 7's row is empty again; one more healthy-worker failure
        # must NOT reach poison_k=2.
        assert not fail_slow(ledger, "w2", 7).poison_task
        assert not ledger.is_poisoned(7)

    def test_failure_tipping_quarantine_does_not_indict(self):
        cfg = HealthConfig(poison_k=1, fast_fail_window=2)
        ledger = HealthLedger(cfg)
        fail_fast(ledger, "bh", 6)  # poisons 6 (k=1) while bh healthy
        assert ledger.is_poisoned(6)
        verdict = fail_fast(ledger, "bh", 7)  # tips bh into quarantine
        assert verdict.quarantine_worker
        assert not verdict.poison_task  # the tipping failure is retracted
        assert not ledger.is_poisoned(7)


class TestStats:
    def test_stats_counts_states_and_events(self):
        cfg = HealthConfig(fast_fail_window=2, quarantine_below=0.1)
        ledger = HealthLedger(cfg)
        fail_fast(ledger, "q", 1)
        fail_fast(ledger, "q", 2)
        while ledger.state("s") is WorkerHealth.HEALTHY:
            fail_slow(ledger, "s", 3)
        stats = ledger.stats()
        assert stats["health_quarantines"] == 1
        assert stats["workers_quarantined"] == 1
        assert stats["workers_suspect"] == 1
        assert ledger.known_workers() == ["q", "s"]
