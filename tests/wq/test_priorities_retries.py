"""Tests for task priorities and the retry/abandon policy."""

from __future__ import annotations

import pytest

from repro.cluster.resources import ResourceVector
from repro.wq.estimator import DeclaredResourceEstimator
from repro.wq.link import Link
from repro.wq.master import Master
from repro.wq.task import Task, TaskState
from repro.wq.worker import Worker

FOOT = ResourceVector(1, 512, 128)


@pytest.fixture
def master(engine):
    return Master(
        engine, Link(engine, 200.0), estimator=DeclaredResourceEstimator(), max_retries=2
    )


def make_task(priority=0, execute_s=10.0):
    return Task("c", execute_s=execute_s, footprint=FOOT, declared=FOOT, priority=priority)


def one_slot_worker(engine, master, name="w1"):
    return Worker(engine, master, name, ResourceVector(1, 4096, 4096))


class TestPriorities:
    def test_higher_priority_dispatched_first(self, engine, master):
        one_slot_worker(engine, master)
        low = make_task(priority=0)
        high = make_task(priority=5)
        master.submit_many([low, high])
        engine.run(until=2.0)
        assert high.state in (TaskState.FETCHING, TaskState.RUNNING)
        assert low.state is TaskState.WAITING

    def test_fifo_within_priority(self, engine, master):
        one_slot_worker(engine, master)
        first = make_task(priority=1)
        second = make_task(priority=1)
        master.submit_many([first, second])
        engine.run(until=2.0)
        assert first.state is not TaskState.WAITING
        assert second.state is TaskState.WAITING

    def test_priorities_order_completion(self, engine, master):
        one_slot_worker(engine, master)
        tasks = [make_task(priority=p, execute_s=5.0) for p in (0, 2, 1)]
        master.submit_many(tasks)
        engine.run(until=100.0)
        finish = {t.priority: t.finish_time for t in tasks}
        assert finish[2] < finish[1] < finish[0]


class TestRetriesAndAbandonment:
    def test_task_abandoned_after_max_retries(self, engine, master):
        task = make_task(execute_s=1000.0)
        master.submit(task)
        abandoned = []
        master.on_abandoned(abandoned.append)
        for i in range(3):  # max_retries=2 → third loss abandons
            w = one_slot_worker(engine, master, f"w{i}")
            engine.run(until=engine.now + 10.0)
            w.kill()
        assert abandoned == [task]
        assert task in master.abandoned
        assert task not in master.waiting_tasks()

    def test_abandoned_task_not_redispatched(self, engine, master):
        task = make_task(execute_s=1000.0)
        master.submit(task)
        for i in range(3):
            w = one_slot_worker(engine, master, f"w{i}")
            engine.run(until=engine.now + 10.0)
            w.kill()
        one_slot_worker(engine, master, "fresh")
        engine.run(until=engine.now + 20.0)
        assert master.stats().running == 0

    def test_retries_below_limit_keep_running(self, engine, master):
        task = make_task(execute_s=30.0)
        master.submit(task)
        w = one_slot_worker(engine, master, "w0")
        engine.run(until=10.0)
        w.kill()
        one_slot_worker(engine, master, "w1")
        engine.run(until=200.0)
        assert task.state is TaskState.DONE
        assert task.attempts == 1
        assert master.abandoned == []

    def test_invalid_max_retries_rejected(self, engine):
        with pytest.raises(ValueError):
            Master(engine, Link(engine, 10.0), max_retries=-1)

    def test_worker_lost_accounting_at_retry_boundary(self, engine, master):
        """Losses up to max_retries requeue; the loss crossing the
        boundary abandons exactly once — one callback, no re-dispatch."""
        task = make_task(execute_s=1000.0)
        master.submit(task)
        abandoned = []
        master.on_abandoned(abandoned.append)
        # Losses 1 and 2 land exactly on max_retries=2: still requeued.
        for i in range(2):
            w = one_slot_worker(engine, master, f"w{i}")
            engine.run(until=engine.now + 10.0)
            w.kill()
            assert abandoned == []
        assert task.attempts == 2
        assert master.tasks_requeued == 2
        assert task in master.waiting_tasks()
        # Loss 3 crosses the boundary: abandoned exactly once.
        w = one_slot_worker(engine, master, "w2")
        engine.run(until=engine.now + 10.0)
        w.kill()
        assert abandoned == [task]
        assert master.abandoned == [task]
        assert master.tasks_requeued == 2  # the final loss did not requeue
        assert task not in master.waiting_tasks()
        # A fresh worker must not pick the abandoned task back up.
        one_slot_worker(engine, master, "fresh")
        engine.run(until=engine.now + 20.0)
        assert master.stats().running == 0
        assert abandoned == [task]  # callback fired exactly once


class TestWorkflowFailurePropagation:
    def test_manager_marks_failed_on_abandonment(self, engine, master):
        from repro.makeflow.dag import WorkflowGraph
        from repro.makeflow.manager import WorkflowManager

        task = make_task(execute_s=1000.0)
        graph = WorkflowGraph([task])
        manager = WorkflowManager(engine, graph, master)
        manager.start()
        for i in range(3):
            w = one_slot_worker(engine, master, f"w{i}")
            engine.run(until=engine.now + 10.0)
            w.kill()
        assert manager.failed
        assert not manager.done
