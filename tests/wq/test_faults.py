"""Tests for task-level fault injection, retries, and speculation."""

from __future__ import annotations

import pytest

from repro.cluster.resources import ResourceVector
from repro.sim.rng import RngRegistry
from repro.wq.estimator import DeclaredResourceEstimator
from repro.wq.faults import (
    CategoryFaultProfile,
    RetryPolicy,
    SpeculationConfig,
    TaskFault,
    TaskFaultModel,
)
from repro.wq.link import Link
from repro.wq.master import Master
from repro.wq.task import Task, TaskState
from repro.wq.worker import Worker

FOOT = ResourceVector(1, 512, 128)
BIG = ResourceVector(4, 4096, 4096)


class ScriptedFaultModel:
    """Returns a pre-programmed fault sequence (None = clean attempt)."""

    def __init__(self, faults):
        self.faults = list(faults)

    def draw(self, task, allocation):
        if self.faults:
            return self.faults.pop(0)
        return None


class AlwaysFail:
    def draw(self, task, allocation):
        return TaskFault(kind="transient", at_fraction=1.0)


def make_task(category="c", execute_s=10.0, declared=True):
    return Task(
        category,
        execute_s=execute_s,
        footprint=FOOT,
        declared=FOOT if declared else None,
    )


def make_master(engine, **kwargs):
    kwargs.setdefault("estimator", DeclaredResourceEstimator())
    return Master(engine, Link(engine, 200.0), **kwargs)


class TestRetryPolicy:
    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(base_backoff_s=2.0, max_backoff_s=30.0)
        assert policy.backoff_s(1) == 2.0
        assert policy.backoff_s(2) == 4.0
        assert policy.backoff_s(3) == 8.0
        assert policy.backoff_s(10) == 30.0  # capped

    def test_zero_attempts_or_base_means_no_backoff(self):
        assert RetryPolicy(base_backoff_s=2.0).backoff_s(0) == 0.0
        assert RetryPolicy(base_backoff_s=0.0).backoff_s(5) == 0.0

    def test_negative_durations_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff_s=-1.0)


class TestCategoryFaultProfile:
    def test_probabilities_validated(self):
        with pytest.raises(ValueError):
            CategoryFaultProfile(failure_prob=1.5)
        with pytest.raises(ValueError):
            CategoryFaultProfile(failure_prob=0.6, exhaustion_prob=0.6)
        with pytest.raises(ValueError):
            CategoryFaultProfile(exhaustion_factor=1.0)

    def test_speculation_config_validated(self):
        with pytest.raises(ValueError):
            SpeculationConfig(check_period_s=0.0)
        with pytest.raises(ValueError):
            SpeculationConfig(slowdown_factor=1.0)


class TestTaskFaultModel:
    def test_zero_probability_consumes_nothing(self):
        model = TaskFaultModel(RngRegistry(1))
        for _ in range(10):
            assert model.draw(make_task(), BIG) is None
        assert model.draws == 0

    def test_certain_transient_failure(self):
        model = TaskFaultModel(
            RngRegistry(1), default=CategoryFaultProfile(failure_prob=1.0)
        )
        fault = model.draw(make_task(), BIG)
        assert fault is not None and fault.kind == "transient"
        assert fault.at_fraction == 1.0

    def test_exhaustion_killed_when_spike_exceeds_allocation(self):
        model = TaskFaultModel(
            RngRegistry(1),
            default=CategoryFaultProfile(exhaustion_prob=1.0, exhaustion_factor=1.5),
        )
        task = make_task()
        fault = model.draw(task, FOOT)  # allocation == footprint < spike
        assert fault is not None and fault.kind == "exhaustion"
        assert fault.escalate_to == FOOT.scale(1.5)
        assert fault.at_fraction == 0.5

    def test_exhaustion_survives_large_allocation(self):
        model = TaskFaultModel(
            RngRegistry(1),
            default=CategoryFaultProfile(exhaustion_prob=1.0, exhaustion_factor=1.5),
        )
        assert model.draw(make_task(), BIG) is None  # spike fits

    def test_exhaustion_survives_after_escalation(self):
        model = TaskFaultModel(
            RngRegistry(1),
            default=CategoryFaultProfile(exhaustion_prob=1.0, exhaustion_factor=1.5),
        )
        task = make_task()
        task.min_allocation = FOOT.scale(1.5)  # escalated retry
        assert model.draw(task, FOOT) is None

    def test_draw_sequence_is_seed_deterministic(self):
        profile = CategoryFaultProfile(failure_prob=0.3, exhaustion_prob=0.3)
        a = TaskFaultModel(RngRegistry(7), default=profile)
        b = TaskFaultModel(RngRegistry(7), default=profile)
        task = make_task()
        seq_a = [a.draw(task, BIG) for _ in range(20)]
        seq_b = [b.draw(task, BIG) for _ in range(20)]
        assert seq_a == seq_b

    def test_per_category_profiles_override_default(self):
        model = TaskFaultModel(
            RngRegistry(1),
            profiles={"flaky": CategoryFaultProfile(failure_prob=1.0)},
            default=CategoryFaultProfile(),
        )
        assert model.draw(make_task("steady"), BIG) is None
        assert model.draw(make_task("flaky"), BIG) is not None


class TestTransientRetries:
    def test_single_failure_retries_after_backoff(self, engine):
        fault = TaskFault(kind="transient", at_fraction=1.0)
        master = make_master(
            engine,
            fault_model=ScriptedFaultModel([fault]),
            retry_policy=RetryPolicy(base_backoff_s=8.0),
        )
        Worker(engine, master, "w1", BIG)
        task = make_task(execute_s=10.0)
        master.submit(task)
        engine.run(until=100.0)
        assert task.state is TaskState.DONE
        assert task.attempts == 1
        assert master.tasks_failed == 1
        assert master.tasks_requeued == 1
        # Attempt 1 burned ~10 s, then 8 s backoff, then a clean 10 s run.
        assert task.finish_time >= 26.0
        assert master.all_done

    def test_always_failing_task_abandoned_at_max_retries(self, engine):
        master = make_master(
            engine,
            fault_model=AlwaysFail(),
            retry_policy=RetryPolicy(base_backoff_s=1.0),
            max_retries=2,
        )
        abandoned = []
        master.on_abandoned(abandoned.append)
        Worker(engine, master, "w1", BIG)
        task = make_task(execute_s=5.0)
        master.submit(task)
        engine.run(until=200.0)
        assert abandoned == [task]
        # Initial attempt + 2 retries, each failing.
        assert master.tasks_failed == 3
        assert master.tasks_requeued == 2
        assert task.state is not TaskState.DONE
        assert master.wasted_core_s == pytest.approx(3 * 5.0 * FOOT.cores)

    def test_waste_charged_for_failed_attempts(self, engine):
        fault = TaskFault(kind="transient", at_fraction=1.0)
        master = make_master(
            engine,
            fault_model=ScriptedFaultModel([fault]),
            retry_policy=RetryPolicy(base_backoff_s=0.0),
        )
        Worker(engine, master, "w1", BIG)
        task = make_task(execute_s=20.0)
        master.submit(task)
        engine.run(until=200.0)
        assert task.state is TaskState.DONE
        assert master.wasted_core_s == pytest.approx(20.0 * FOOT.cores)
        assert master.goodput_core_s() == pytest.approx(20.0 * FOOT.cores)


class TestExhaustionEscalation:
    def make_exhausting_master(self, engine):
        return make_master(
            engine,
            fault_model=TaskFaultModel(
                RngRegistry(3),
                default=CategoryFaultProfile(
                    exhaustion_prob=1.0, exhaustion_factor=1.5
                ),
            ),
            retry_policy=RetryPolicy(base_backoff_s=0.0),
        )

    def test_killed_then_completes_under_escalated_allocation(self, engine):
        master = self.make_exhausting_master(engine)
        Worker(engine, master, "w1", BIG)
        task = make_task(execute_s=10.0)
        master.submit(task)
        engine.run(until=100.0)
        assert task.state is TaskState.DONE
        assert task.attempts == 1
        assert master.tasks_exhausted == 1
        assert master.escalations == 1
        assert task.min_allocation == FOOT.scale(1.5)
        # The kill landed halfway through: 5 s of one core wasted.
        assert master.wasted_core_s == pytest.approx(5.0 * FOOT.cores)

    def test_escalation_recorded_against_category(self, engine):
        master = self.make_exhausting_master(engine)
        Worker(engine, master, "w1", BIG)
        master.submit(make_task(execute_s=10.0))
        engine.run(until=100.0)
        stats = master.monitor.category("c")
        assert stats is not None
        assert stats.escalations == 1
        assert stats.escalated_floor == FOOT.scale(1.5)
        estimate = master.monitor.resource_estimate("c")
        assert estimate is not None
        assert FOOT.scale(1.5).fits_in(estimate)

    def test_escalated_floor_survives_without_samples(self):
        from repro.wq.monitor import ResourceMonitor

        monitor = ResourceMonitor()
        assert monitor.resource_estimate("c") is None
        monitor.observe_exhaustion("c", FOOT.scale(2.0))
        estimate = monitor.resource_estimate("c")
        assert estimate is not None
        assert FOOT.scale(2.0).fits_in(estimate)
        assert monitor.escalation_count == 1


class TestSpeculation:
    CFG = SpeculationConfig(
        check_period_s=5.0, slowdown_factor=2.0, min_samples=3, min_age_s=5.0
    )

    def make_spec_master(self, engine):
        master = make_master(engine, speculation=self.CFG)
        Worker(engine, master, "w1", BIG)
        Worker(engine, master, "w2", BIG)
        return master

    def warm_up(self, engine, master, n=3):
        tasks = [make_task(execute_s=10.0) for _ in range(n)]
        master.submit_many(tasks)
        engine.run(until=engine.now + 60.0)
        assert all(t.state is TaskState.DONE for t in tasks)

    def test_straggler_clone_wins(self, engine):
        master = self.make_spec_master(engine)
        self.warm_up(engine, master)
        straggler = make_task(execute_s=500.0)
        master.submit(straggler)
        engine.run(until=engine.now + 120.0)
        # The clone ran for the category mean (~10 s) and finished first.
        assert straggler.state is TaskState.DONE
        assert master.tasks_speculated == 1
        assert master.speculation_wins == 1
        assert straggler.finish_time < 200.0  # far sooner than 500 s
        assert master.done.count(straggler) == 1
        # The straggling attempt was cancelled and charged as waste.
        assert master.wasted_core_s > 0
        assert all(not w.runs for w in master.workers.values())
        assert master.all_done

    def test_fast_original_beats_clone(self, engine):
        master = self.make_spec_master(engine)
        self.warm_up(engine, master)
        # Slow enough to trigger speculation (>2x mean), fast enough to
        # beat the clone, which needs ~10 s from its later launch.
        original = make_task(execute_s=28.0)
        master.submit(original)
        engine.run(until=engine.now + 120.0)
        assert original.state is TaskState.DONE
        assert master.tasks_speculated == 1
        assert master.speculation_wins == 0
        assert master.speculation_losses == 1
        assert master.done.count(original) == 1
        assert all(not w.runs for w in master.workers.values())

    def test_no_speculation_while_queue_nonempty(self, engine):
        master = make_master(engine, speculation=self.CFG)
        Worker(engine, master, "w1", ResourceVector(1, 4096, 4096))
        self.warm_up(engine, master)
        # One slot total: the straggler runs while another task waits, so
        # the backup-task rule must hold speculation back.
        straggler = make_task(execute_s=100.0)
        waiting = make_task(execute_s=10.0)
        master.submit(straggler)
        master.submit(waiting)
        engine.run(until=engine.now + 50.0)
        assert master.tasks_speculated == 0

    def test_event_queue_drains_after_completion(self, engine):
        master = self.make_spec_master(engine)
        self.warm_up(engine, master)
        engine.run(until=engine.now + 600.0)
        # The speculation loop must stop itself once the master idles,
        # leaving the event queue empty (drivers detect completion this way).
        assert engine.peek() is None

    def test_speculative_copy_death_does_not_requeue(self, engine):
        master = self.make_spec_master(engine)
        self.warm_up(engine, master)
        straggler = make_task(execute_s=500.0)
        master.submit(straggler)
        # Run until the clone is live, then kill its worker.
        engine.run(until=engine.now + 22.0)
        assert master.tasks_speculated == 1
        clone = master._spec[straggler.id]
        host = master._worker_running(clone.id)
        assert host is not None
        requeued_before = master.tasks_requeued
        host.kill()
        engine.run(until=engine.now + 5.0)
        # The copy died silently: nothing requeued, the original unbothered.
        assert clone.id not in master.running
        assert master.tasks_requeued == requeued_before
        assert straggler.state is TaskState.RUNNING
        assert straggler.id not in master._spec
