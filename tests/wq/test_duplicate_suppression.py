"""Duplicate result deliveries are suppressed idempotently.

The master keys accepted results by ``(task_id, attempt)``: a redelivery
— a speculative pair both finishing, a detached worker replaying its
held outputs after the master already re-ran the task — must bump
category statistics and completion callbacks exactly once.
"""

from __future__ import annotations

from repro.cluster.resources import ResourceVector
from repro.wq.estimator import DeclaredResourceEstimator
from repro.wq.faults import SpeculationConfig
from repro.wq.link import Link
from repro.wq.master import Master
from repro.wq.task import Task, TaskState
from repro.wq.worker import Worker

FOOT = ResourceVector(1, 512, 128)
BIG = ResourceVector(4, 4096, 4096)


def make_task(execute_s=10.0, category="c"):
    return Task(category, execute_s=execute_s, footprint=FOOT, declared=FOOT)


def make_master(engine, **kwargs):
    kwargs.setdefault("estimator", DeclaredResourceEstimator())
    return Master(engine, Link(engine, 200.0), **kwargs)


class TestDuplicateSuppression:
    def test_redelivery_of_accepted_result_is_dropped(self, engine):
        master = make_master(engine)
        worker = Worker(engine, master, "w1", BIG)
        seen = []
        master.on_complete(lambda t, r: seen.append(t.id))
        task = make_task()
        master.submit(task)
        engine.run(until=30.0)
        assert task.state is TaskState.DONE
        # The same worker replays the delivery (e.g. held outputs after a
        # reconnect that raced the first delivery).
        master.task_finished(worker, task)
        assert master.duplicate_results == 1
        assert len(master.done) == 1
        assert len(master.monitor.results) == 1
        assert seen == [task.id]

    def test_speculative_pair_bumps_stats_once(self, engine):
        cfg = SpeculationConfig(
            check_period_s=5.0, slowdown_factor=2.0, min_samples=3, min_age_s=5.0
        )
        master = make_master(engine, speculation=cfg)
        Worker(engine, master, "w1", BIG)
        Worker(engine, master, "w2", BIG)
        warmup = [make_task(execute_s=10.0) for _ in range(3)]
        master.submit_many(warmup)
        engine.run(until=engine.now + 60.0)
        baseline_results = len(master.monitor.results)
        # Slow enough to clone (>2x the ~10 s mean), fast enough that the
        # original still finishes. A master outage after the clone
        # launches lets BOTH attempts complete and buffer — resume then
        # delivers the pair back to back.
        original = make_task(execute_s=28.0)
        master.submit(original)
        engine.run(until=engine.now + 22.0)
        assert master.tasks_speculated == 1
        master.pause()
        engine.run(until=engine.now + 15.0)
        assert len(master._buffered_completions) == 2
        master.resume()
        engine.run(until=engine.now + 5.0)
        assert original.state is TaskState.DONE
        assert master.done.count(original) == 1
        # Exactly one result recorded for the pair, whichever copy won.
        assert len(master.monitor.results) == baseline_results + 1
        stats = master.monitor.category("c")
        assert stats is not None and stats.count == 4

    def test_straggler_clone_win_records_once(self, engine):
        cfg = SpeculationConfig(
            check_period_s=5.0, slowdown_factor=2.0, min_samples=3, min_age_s=5.0
        )
        master = make_master(engine, speculation=cfg)
        Worker(engine, master, "w1", BIG)
        Worker(engine, master, "w2", BIG)
        warmup = [make_task(execute_s=10.0) for _ in range(3)]
        master.submit_many(warmup)
        engine.run(until=engine.now + 60.0)
        straggler = make_task(execute_s=500.0)
        master.submit(straggler)
        engine.run(until=engine.now + 200.0)
        assert master.speculation_wins == 1
        assert straggler.state is TaskState.DONE
        assert master.done.count(straggler) == 1
        stats = master.monitor.category("c")
        assert stats is not None and stats.count == 4
        # The accepted (task, attempt) key blocks any late redelivery.
        assert (straggler.id, straggler.result.attempts) in master._delivered
