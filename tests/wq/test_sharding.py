"""The sharded data plane: partitioner, foreman aggregation, transfers.

DESIGN.md §15: a :class:`TaskPartitioner` splits a workflow across N
:class:`Master` shards deterministically; a :class:`Foreman` aggregates
the shards into the one logical view the autoscaler consumes. These
tests pin the shard-boundary protocols — deterministic routing, the
cross-shard checkpoint transfer resuming exactly once, degraded-mode
aggregation with a crashed shard — and the merged-journal semantics.
"""

from __future__ import annotations

import pytest

from repro.cluster.resources import ResourceVector
from repro.soak.invariants import check_failover_protocol
from repro.wq.estimator import DeclaredResourceEstimator
from repro.wq.link import Link
from repro.wq.master import Master
from repro.wq.migration import CheckpointSpec
from repro.wq.sharding import (
    FailoverConfig,
    FailoverCoordinator,
    Foreman,
    TaskPartitioner,
    merge_journals,
)
from repro.wq.task import Task, TaskState
from repro.wq.worker import Worker

FOOT = ResourceVector(1, 512, 128)
CAP = ResourceVector(4, 4096, 4096)
SPEC = CheckpointSpec(interval_s=10.0, cost_s=1.0, size_mb=10.0)


def make_task(execute_s=10.0, checkpoint=None):
    return Task(
        "c",
        execute_s=execute_s,
        footprint=FOOT,
        declared=FOOT,
        checkpoint=checkpoint,
    )


def make_foreman(engine, n=2, seed=1, mode="hash"):
    link = Link(engine, 100.0)
    shards = [
        Master(
            engine,
            link,
            estimator=DeclaredResourceEstimator(),
            name=f"m{i}",
        )
        for i in range(n)
    ]
    foreman = Foreman(
        engine, shards, partitioner=TaskPartitioner(n, seed=seed, mode=mode)
    )
    return foreman, shards


class TestTaskPartitioner:
    def test_hash_routing_is_deterministic(self):
        p = TaskPartitioner(4, seed=7)
        q = TaskPartitioner(4, seed=7)
        assert [p.shard_for(i) for i in range(100)] == [
            q.shard_for(i) for i in range(100)
        ]

    def test_seed_reshuffles_the_assignment(self):
        a = TaskPartitioner(4, seed=1)
        b = TaskPartitioner(4, seed=2)
        assert [a.shard_for(i) for i in range(100)] != [
            b.shard_for(i) for i in range(100)
        ]

    def test_hash_mode_balances(self):
        p = TaskPartitioner(4, seed=0)
        counts = [0, 0, 0, 0]
        for task_id in range(10_000):
            counts[p.shard_for(task_id)] += 1
        for count in counts:
            assert 0.15 * 10_000 <= count <= 0.35 * 10_000

    def test_range_mode_assigns_contiguous_blocks(self):
        p = TaskPartitioner(2, mode="range", block=4)
        assert [p.shard_for(i) for i in range(12)] == [
            0, 0, 0, 0, 1, 1, 1, 1, 0, 0, 0, 0,
        ]

    def test_single_shard_takes_everything(self):
        p = TaskPartitioner(1, seed=99)
        assert {p.shard_for(i) for i in range(50)} == {0}

    def test_validation(self):
        with pytest.raises(ValueError):
            TaskPartitioner(0)
        with pytest.raises(ValueError):
            TaskPartitioner(2, mode="nope")
        with pytest.raises(ValueError):
            TaskPartitioner(2, mode="range", block=0)


class TestForemanConstruction:
    def test_rejects_empty_shard_list(self, engine):
        with pytest.raises(ValueError):
            Foreman(engine, [])

    def test_rejects_partitioner_shard_count_mismatch(self, engine):
        link = Link(engine, 100.0)
        shards = [Master(engine, link, name=f"m{i}") for i in range(2)]
        with pytest.raises(ValueError):
            Foreman(engine, shards, partitioner=TaskPartitioner(3))


class TestAggregation:
    def test_counters_and_stats_sum_over_shards(self, engine):
        foreman, (a, b) = make_foreman(engine, 2)
        for shard in (a, b):
            Worker(engine, shard, f"w-{shard.name}", CAP, connect_latency=1.0)
        tasks = [make_task(execute_s=5.0) for _ in range(16)]
        foreman.submit_many(tasks)
        engine.run(until=9.0)  # mid-flight: some done, some queued/running
        assert a.tasks_submitted > 0 and b.tasks_submitted > 0  # both used
        stats = foreman.stats()
        sa, sb = a.stats(), b.stats()
        assert stats.done == sa.done + sb.done
        assert stats.waiting == sa.waiting + sb.waiting
        assert stats.running == sa.running + sb.running
        assert stats.workers_connected == 2
        assert foreman.tasks_submitted == len(tasks)
        assert len(foreman.queue) == len(a.queue) + len(b.queue)
        assert len(foreman.done) == len(a.done) + len(b.done)
        engine.run(until=200.0)
        assert foreman.all_done
        assert foreman.stats().done == len(tasks)

    def test_merged_journal_orders_by_time_and_conserves_records(self, engine):
        foreman, (a, b) = make_foreman(engine, 2)
        for shard in (a, b):
            Worker(engine, shard, f"w-{shard.name}", CAP, connect_latency=1.0)
        foreman.submit_many([make_task(execute_s=3.0) for _ in range(10)])
        engine.run(until=100.0)
        assert foreman.all_done
        merged = merge_journals([a.journal, b.journal])
        assert len(merged) == len(a.journal) + len(b.journal)
        times = [rec.time for rec in merged.records]
        assert times == sorted(times)
        # Per-shard record order survives the merge.
        for shard in (a, b):
            own = [r for r in merged.records if r in shard.journal.records]
            assert own == list(shard.journal.records)
        # The foreman's journal property is the same merged view.
        assert foreman.journal.digest() == merged.digest()


class TestCrossShardTransfer:
    def test_checkpoint_transfer_resumes_exactly_once(self, engine):
        """Satellite protocol: a task submitted to shard A, checkpointed
        there (PR 7 migration path), handed to shard B via the foreman,
        and finished by a B-owned worker — exactly one completion, with
        the banked progress resumed on B and the merged journal folding
        back clean."""
        foreman, (a, b) = make_foreman(engine, 2)
        wa = Worker(engine, a, "wa", CAP, connect_latency=1.0)
        Worker(engine, b, "wb", CAP, connect_latency=1.0)
        task = make_task(execute_s=100.0, checkpoint=SPEC)
        a.submit(task)
        engine.run(until=2.0)
        assert task.state is TaskState.RUNNING
        start = task.start_time
        engine.run(until=start + 35.0)
        banked = SPEC.banked_progress(engine.now - start)
        assert banked == 30.0
        assert wa.migrate_out(task)
        wa.drain()  # the PR 7 drain flow: checkpoint out, then leave —
        # with A's only worker gone the requeued task cannot bounce back
        # onto shard A before the foreman moves it.
        engine.run(until=engine.now + SPEC.cost_s + 1.0)  # cut + ship
        assert a.migrations_accepted == 1
        assert task.progress_s == banked
        # The foreman moves the checkpointed task across the boundary.
        assert foreman.transfer_queued(task, b)
        assert foreman.transfers == 1
        assert task.id not in {t.id for t in a.queue}
        engine.run(until=engine.now + 90.0)
        assert task.state is TaskState.DONE
        # Exactly once, and on the other side of the boundary.
        assert [t.id for t in b.done] == [task.id]
        assert [t.id for t in a.done] == []
        # B journaled the resume with A's banked progress.
        b_migrate_in = [
            r for r in b.journal.records if r.op == "migrate_in"
        ]
        assert [r.progress for r in b_migrate_in] == [banked]
        # The merged journal replays to one completion, no residue. (The
        # per-shard journals individually do NOT balance — submit lives
        # on A, complete on B — which is why the merged view is the
        # canonical one.)
        state = foreman.journal.replay()
        assert [t.id for t, _ in state.completions] == [task.id]
        assert not state.ready and not state.unclaimed
        assert state.progress[task.id] == banked

    def test_transfer_of_unqueued_task_is_refused(self, engine):
        foreman, (a, b) = make_foreman(engine, 2)
        Worker(engine, a, "wa", CAP, connect_latency=1.0)
        task = make_task(execute_s=50.0)
        a.submit(task)
        engine.run(until=5.0)
        assert task.state is TaskState.RUNNING  # not queued: refuse
        assert not foreman.transfer_queued(task, b)
        assert foreman.transfers == 0


class TestDegradedMode:
    def test_one_crashed_shard_degrades_but_keeps_the_plane_available(
        self, engine
    ):
        foreman, (a, b) = make_foreman(engine, 2)
        for shard in (a, b):
            Worker(engine, shard, f"w-{shard.name}", CAP, connect_latency=1.0)
        foreman.submit_many([make_task(execute_s=20.0) for _ in range(12)])
        engine.run(until=10.0)
        b.crash()
        assert foreman.available  # one live shard keeps the plane up
        assert foreman.degraded and foreman.crashed
        # The aggregated view now equals the live shard's ground truth —
        # the operator sizes from what is actually reachable.
        assert foreman.stats() == a.stats()
        assert foreman.cores_in_use() == a.cores_in_use()
        assert foreman.cores_waiting() == a.cores_waiting()
        assert foreman.supplied_cores() == a.supplied_cores()
        # Completion history still spans all shards (B's finished work
        # is not forgotten, it is just not schedulable state).
        assert len(foreman.done) == len(a.done) + len(b.done)
        b.recover()
        engine.run(until=400.0)
        assert not foreman.degraded
        assert foreman.all_done

    def test_all_shards_crashed_means_unavailable(self, engine):
        foreman, (a, b) = make_foreman(engine, 2)
        a.crash()
        b.crash()
        assert not foreman.available
        stats = foreman.stats()
        assert stats.done == 0 and stats.waiting == 0

    def test_any_all_crashed_split_and_conservative_alias(self, engine):
        """The PR 10 split: ``any_crashed`` (degraded, some partition
        dark) vs ``all_crashed`` (logical master gone), with ``crashed``
        pinned as the documented alias for the conservative reading —
        single-master callers that gate on "crashed" must keep gating
        while *any* shard is dark."""
        foreman, (a, b) = make_foreman(engine, 2)
        assert not foreman.any_crashed
        assert not foreman.all_crashed
        assert not foreman.crashed
        a.crash()
        assert foreman.any_crashed
        assert not foreman.all_crashed
        assert foreman.crashed  # alias follows the conservative reading
        b.crash()
        assert foreman.any_crashed and foreman.all_crashed
        assert foreman.crashed
        a.recover()
        assert foreman.any_crashed  # b is still down
        assert not foreman.all_crashed
        assert foreman.crashed
        b.recover()
        assert not foreman.any_crashed and not foreman.crashed


def make_coordinator(engine, foreman, grace_s=10.0):
    """A failover coordinator with the rebalance tick disarmed — these
    tests pin the crash/grace/re-home protocol itself, not the
    starvation-repair sweep."""
    return FailoverCoordinator(
        engine,
        foreman,
        FailoverConfig(grace_s=grace_s, rebalance_interval_s=None),
    )


class TestFailoverEdges:
    """Satellite (PR 10): cross-shard transfer failure edges and the
    recovery-after-failover replay semantics."""

    def test_transfer_destination_crash_rehomes_from_its_journal(
        self, engine
    ):
        """A transfer lands a task on shard B via FAILOVER_IN; B then
        crashes before dispatching it. The task now lives *only* in B's
        journal — the coordinator's replay must re-home it onto the
        survivor, where it runs exactly once, with the merged journal's
        OUT/IN chains balanced (transfer pair + failover pair)."""
        foreman, (a, b) = make_foreman(engine, 2)
        coordinator = make_coordinator(engine, foreman, grace_s=30.0)
        Worker(engine, a, "wa", CAP, connect_latency=1.0)
        task = make_task(execute_s=5.0)
        a.submit(task)
        assert foreman.transfer_queued(task, b)  # before wa connects
        engine.run(until=5.0)
        assert task.id not in {t.id for t in a.queue}
        foreman.crash_shard(1)  # permanent: no restart scheduled
        # The crash wiped B's in-memory queue; only its journal knows.
        assert len(b.queue) == 0
        assert task.state is not TaskState.DONE
        engine.run(until=5.0 + 30.0 + 1.0)  # grace expires -> failover
        assert coordinator.failovers == 1
        assert coordinator.tasks_rehomed == 1
        engine.run(until=120.0)
        assert task.state is TaskState.DONE
        assert [t.id for t in foreman.done] == [task.id]
        assert check_failover_protocol(foreman) == []

    def test_double_failover_of_the_same_shard(self, engine):
        """Crash -> failover -> recover -> crash -> failover again on
        one shard: both generations of re-homes fold clean (every
        FAILOVER_OUT/IN pair balanced, no task resumed twice) and all
        work completes."""
        foreman, (a, b) = make_foreman(engine, 2)
        coordinator = make_coordinator(engine, foreman, grace_s=10.0)
        Worker(engine, a, "wa", CAP, connect_latency=1.0)
        first = [make_task(execute_s=2.0) for _ in range(8)]
        for task in first:
            b.submit(task)  # B has no workers: all 8 stay queued
        foreman.crash_shard(1)
        engine.run(until=11.0)
        assert coordinator.failovers == 1
        assert coordinator.tasks_rehomed == 8
        foreman.recover_shard(1)
        # Replay folded the FAILOVER_OUT records: B rejoins empty.
        assert len(b.queue) == 0 and not b._unclaimed
        second = [make_task(execute_s=2.0) for _ in range(4)]
        for task in second:
            b.submit(task)
        foreman.crash_shard(1)
        engine.run(until=engine.now + 11.0)
        assert coordinator.failovers == 2
        # Second replay surfaced only the second generation's tasks.
        assert coordinator.tasks_rehomed == 12
        engine.run(until=engine.now + 120.0)
        assert foreman.all_done
        assert all(t.state is TaskState.DONE for t in first + second)
        done_ids = [t.id for t in foreman.done]
        assert len(done_ids) == len(set(done_ids)) == 12
        assert check_failover_protocol(foreman) == []

    def test_recovered_shard_replay_discards_rehomed_entries(self, engine):
        """A shard that comes back *after* its work was failed over
        un-retires empty-handed: its journal replay discards the
        re-homed entries, so nothing double-dispatches, and fresh
        submits route to it again."""
        foreman, (a, b) = make_foreman(engine, 2)
        coordinator = make_coordinator(engine, foreman, grace_s=10.0)
        Worker(engine, a, "wa", CAP, connect_latency=1.0)
        tasks = [make_task(execute_s=2.0) for _ in range(6)]
        for task in tasks:
            b.submit(task)
        foreman.crash_shard(1)
        engine.run(until=12.0)
        assert coordinator.failovers == 1
        assert coordinator.tasks_rehomed == 6
        foreman.recover_shard(1)
        assert len(b.queue) == 0 and not b._unclaimed
        assert not foreman.degraded
        # The un-retired shard accepts and finishes new work normally.
        Worker(engine, b, "wb", CAP, connect_latency=1.0)
        late = make_task(execute_s=2.0)
        b.submit(late)
        engine.run(until=120.0)
        assert foreman.all_done
        assert all(t.state is TaskState.DONE for t in tasks + [late])
        done_ids = [t.id for t in foreman.done]
        assert len(done_ids) == len(set(done_ids)) == 7
        assert late.id in {t.id for t in b.done}
        assert check_failover_protocol(foreman) == []
