"""Unit tests for master crash recovery via the transaction journal."""

from __future__ import annotations

import pytest

from repro.cluster.resources import ResourceVector
from repro.wq.estimator import DeclaredResourceEstimator
from repro.wq.journal import TransactionJournal
from repro.wq.link import Link
from repro.wq.master import Master
from repro.wq.task import Task, TaskState
from repro.wq.worker import Worker, WorkerState

FOOT = ResourceVector(1, 512, 128)
BIG = ResourceVector(4, 4096, 4096)


def make_task(execute_s=10.0, category="c"):
    return Task(category, execute_s=execute_s, footprint=FOOT, declared=FOOT)


def make_master(engine, **kwargs):
    kwargs.setdefault("estimator", DeclaredResourceEstimator())
    return Master(engine, Link(engine, 200.0), **kwargs)


class TestJournalReplay:
    def test_replay_reconstructs_ready_queue(self, engine):
        journal = TransactionJournal()
        tasks = [make_task() for _ in range(3)]
        for t in tasks:
            journal.record_submit(0.0, t)
        journal.record_dispatch(1.0, tasks[0])
        state = journal.replay()
        assert state.ready == tasks[1:]
        assert list(state.unclaimed.values()) == [tasks[0]]
        assert state.submitted == 3

    def test_replay_retry_moves_to_queue_front(self, engine):
        journal = TransactionJournal()
        a, b = make_task(), make_task()
        journal.record_submit(0.0, a)
        journal.record_submit(0.0, b)
        journal.record_dispatch(1.0, a)
        a.attempts = 1
        journal.record_retry(2.0, a)
        state = journal.replay()
        assert state.ready == [a, b]
        assert not state.unclaimed
        assert state.attempts[a.id] == 1

    def test_cold_replay_only_honours_submits(self, engine):
        journal = TransactionJournal()
        tasks = [make_task() for _ in range(2)]
        for t in tasks:
            journal.record_submit(0.0, t)
        journal.record_dispatch(1.0, tasks[0])
        state = journal.replay(completions=False)
        assert state.ready == tasks
        assert not state.unclaimed
        assert not state.completions


class TestCrashRecovery:
    def run_partial(self, engine, master, n=6, until=25.0):
        Worker(engine, master, "w1", ResourceVector(2, 4096, 4096))
        tasks = [make_task(execute_s=10.0) for _ in range(n)]
        master.submit_many(tasks)
        engine.run(until=until)
        assert 0 < len(master.done) < n
        return tasks

    def test_crash_marks_unavailable_and_wipes_state(self, engine):
        master = make_master(engine)
        tasks = self.run_partial(engine, master)
        master.crash()
        assert master.crashed
        assert not master.available
        assert master.crashes == 1
        assert not master.queue and not master.running and not master.done
        assert not master.all_done  # a crashed master is not "finished"
        master.crash()  # idempotent
        assert master.crashes == 1
        del tasks

    def test_journal_recovery_never_reruns_completed_work(self, engine):
        master = make_master(engine)
        tasks = self.run_partial(engine, master)
        done_before = len(master.done)
        master.crash(restart_delay_s=5.0)
        engine.run(until=300.0)
        assert all(t.state is TaskState.DONE for t in tasks)
        assert len(master.done) == len(tasks)
        assert master.tasks_rerun == 0
        # The monitor was rebuilt from the journal: one result per task.
        assert len(master.monitor.results) == len(tasks)
        assert len(master.done) >= done_before
        assert master.all_done
        assert master.last_crash_at == 25.0
        assert master.last_recovered_at == 30.0
        assert master.first_completion_after_recovery_at is not None

    def test_workers_reconnect_and_runs_are_adopted(self, engine):
        master = make_master(engine)
        worker = Worker(engine, master, "w1", ResourceVector(2, 4096, 4096))
        tasks = [make_task(execute_s=30.0) for _ in range(2)]
        master.submit_many(tasks)
        engine.run(until=5.0)  # both dispatched and executing
        assert len(worker.runs) == 2
        master.crash(restart_delay_s=4.0)
        engine.run(until=200.0)
        assert worker.reconnects == 1
        assert worker.state is WorkerState.READY
        # The in-flight attempts were adopted, not re-run: each task
        # executed exactly once.
        assert master.tasks_rerun == 0
        assert master.duplicate_results == 0
        assert all(t.state is TaskState.DONE for t in tasks)
        assert all(t.attempts == 0 for t in tasks)

    def test_detached_worker_holds_results_until_reconnect(self, engine):
        master = make_master(engine)
        worker = Worker(engine, master, "w1", ResourceVector(2, 4096, 4096))
        task = make_task(execute_s=10.0)
        master.submit(task)
        engine.run(until=5.0)
        # Long restart: the task finishes while the master is down.
        master.crash(restart_delay_s=50.0)
        engine.run(until=40.0)
        assert task.state is not TaskState.DONE
        assert worker._held_results  # outputs held locally
        engine.run(until=200.0)
        assert task.state is TaskState.DONE
        assert master.tasks_rerun == 0

    def test_grace_window_requeues_tasks_of_dead_workers(self, engine):
        master = make_master(engine, recovery_grace_s=45.0)
        worker = Worker(engine, master, "w1", ResourceVector(2, 4096, 4096))
        task = make_task(execute_s=100.0)
        master.submit(task)
        engine.run(until=5.0)
        master.crash(restart_delay_s=2.0)
        worker.kill()  # died during the outage: never reconnects
        engine.run(until=20.0)
        # Recovered but unclaimed: waiting out the grace window.
        assert task.id in master._unclaimed
        Worker(engine, master, "w2", ResourceVector(2, 4096, 4096))
        engine.run(until=300.0)
        assert task.state is TaskState.DONE
        assert task.attempts == 1  # the lost attempt was charged

    def test_cold_restart_reruns_completed_prefix(self, engine):
        master = make_master(engine, replay_journal=False)
        tasks = self.run_partial(engine, master)
        done_before = len(master.done)
        master.crash(restart_delay_s=5.0)
        engine.run(until=400.0)
        assert all(t.state is TaskState.DONE for t in tasks)
        assert master.tasks_rerun >= done_before
        assert len(master.done) == len(tasks)

    def test_retry_counts_survive_replay(self, engine):
        master = make_master(engine)
        worker = Worker(engine, master, "w1", ResourceVector(2, 4096, 4096))
        task = make_task(execute_s=60.0)
        master.submit(task)
        engine.run(until=5.0)
        worker.kill()  # attempt 1 lost; requeued at the front
        engine.run(until=6.0)
        assert task.attempts == 1
        master.crash(restart_delay_s=2.0)
        engine.run(until=10.0)
        assert task.attempts == 1  # reconstructed from the journal
        assert task in master.queue
