"""Tests for the pod↔worker runtime glue."""

from __future__ import annotations

import pytest

from repro.cluster.pod import Pod, PodPhase, PodSpec
from repro.cluster.resources import ResourceVector
from repro.wq.estimator import DeclaredResourceEstimator
from repro.wq.link import Link
from repro.wq.master import Master
from repro.wq.runtime import WorkerPodRuntime
from repro.wq.task import Task, TaskState
from repro.wq.worker import WorkerState

FOOT = ResourceVector(1, 512, 128)


@pytest.fixture
def stack(engine, small_cluster, worker_image):
    link = Link(engine, 200.0)
    master = Master(engine, link, estimator=DeclaredResourceEstimator())
    runtime = WorkerPodRuntime(
        engine, small_cluster.api, small_cluster.kubelets, master
    )
    return small_cluster, master, runtime


def create_worker_pod(cluster, image, name="wp1", cores=4.0):
    pod = Pod(
        name,
        PodSpec(image, ResourceVector(cores, 4096, 4096), labels={"app": "wq-worker"}),
    )
    cluster.api.create(pod)
    return pod


def make_task(execute_s=10.0):
    return Task("c", execute_s=execute_s, footprint=FOOT, declared=FOOT)


class TestWorkerStart:
    def test_worker_started_when_pod_runs(self, engine, stack, worker_image):
        cluster, master, runtime = stack
        pod = create_worker_pod(cluster, worker_image)
        engine.run(until=30.0)
        assert pod.phase is PodPhase.RUNNING
        worker = runtime.worker_for(pod)
        assert worker is not None
        assert worker.state is WorkerState.READY
        assert master.stats().workers_connected == 1

    def test_worker_capacity_matches_pod_request(self, engine, stack, worker_image):
        cluster, master, runtime = stack
        pod = create_worker_pod(cluster, worker_image, cores=2.0)
        engine.run(until=30.0)
        assert runtime.worker_for(pod).capacity.cores == 2.0

    def test_pod_reports_worker_cpu(self, engine, stack, worker_image):
        cluster, master, runtime = stack
        pod = create_worker_pod(cluster, worker_image)
        engine.run(until=30.0)
        master.submit(make_task(execute_s=100.0))
        engine.run(until=40.0)
        assert pod.current_cpu_usage() == pytest.approx(1.0)

    def test_unlabelled_pods_ignored(self, engine, stack, worker_image):
        cluster, master, runtime = stack
        pod = Pod("other", PodSpec(worker_image, ResourceVector(1, 512, 512)))
        cluster.api.create(pod)
        engine.run(until=30.0)
        assert runtime.worker_for(pod) is None

    def test_on_worker_started_hook(self, engine, small_cluster, worker_image):
        link = Link(engine, 200.0)
        master = Master(engine, link)
        seen = []
        runtime = WorkerPodRuntime(
            engine,
            small_cluster.api,
            small_cluster.kubelets,
            master,
            on_worker_started=lambda w: seen.append(w.name),
        )
        create_worker_pod(small_cluster, worker_image)
        engine.run(until=30.0)
        assert seen == ["worker@wp1"]


class TestStopPaths:
    def test_pod_delete_kills_worker_and_requeues(self, engine, stack, worker_image):
        cluster, master, runtime = stack
        pod = create_worker_pod(cluster, worker_image)
        engine.run(until=30.0)
        task = make_task(execute_s=1000.0)
        master.submit(task)
        engine.run(until=40.0)
        cluster.api.delete("Pod", pod.name)
        assert task.state is TaskState.WAITING
        assert runtime.workers_killed == 1
        assert master.stats().workers_connected == 0

    def test_graceful_drain_completes_pod(self, engine, stack, worker_image):
        cluster, master, runtime = stack
        pod = create_worker_pod(cluster, worker_image)
        engine.run(until=30.0)
        worker = runtime.worker_for(pod)
        worker.drain()
        engine.run(until=40.0)
        assert pod.phase is PodPhase.SUCCEEDED

    def test_live_workers_listing(self, engine, stack, worker_image):
        cluster, master, runtime = stack
        p1 = create_worker_pod(cluster, worker_image, "wp1")
        p2 = create_worker_pod(cluster, worker_image, "wp2")
        engine.run(until=30.0)
        assert len(runtime.live_workers()) == 2
        runtime.worker_for(p1).drain()
        engine.run(until=40.0)
        assert len(runtime.live_workers()) == 1
