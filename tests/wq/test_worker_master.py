"""Integration-style unit tests for workers and the master (no cluster)."""

from __future__ import annotations

import pytest

from repro.cluster.resources import ResourceVector
from repro.wq.estimator import ConservativeEstimator, DeclaredResourceEstimator
from repro.wq.link import Link
from repro.wq.master import Master
from repro.wq.task import FileSpec, Task, TaskState
from repro.wq.worker import Worker, WorkerState

FOOT = ResourceVector(1, 512, 128)
CAP = ResourceVector(4, 4096, 4096)


@pytest.fixture
def link(engine):
    return Link(engine, 100.0)


@pytest.fixture
def master(engine, link):
    return Master(engine, link, estimator=DeclaredResourceEstimator())


def make_task(category="c", execute_s=10.0, declared=True, inputs=(), outputs=()):
    return Task(
        category,
        execute_s=execute_s,
        footprint=FOOT,
        declared=FOOT if declared else None,
        inputs=inputs,
        outputs=outputs,
    )


def add_worker(engine, master, name="w1", capacity=CAP, latency=1.0):
    return Worker(engine, master, name, capacity, connect_latency=latency)


class TestWorkerLifecycle:
    def test_worker_registers_after_connect_latency(self, engine, master):
        w = add_worker(engine, master, latency=2.0)
        engine.run(until=1.0)
        assert master.stats().workers_connected == 0
        engine.run(until=3.0)
        assert master.stats().workers_connected == 1
        assert w.state is WorkerState.READY

    def test_zero_capacity_rejected(self, engine, master):
        with pytest.raises(ValueError):
            Worker(engine, master, "w", ResourceVector.zero())

    def test_drain_before_connect_exits_silently(self, engine, master):
        w = add_worker(engine, master, latency=5.0)
        w.drain()
        engine.run(until=10.0)
        assert w.state is WorkerState.STOPPED
        assert master.stats().workers_connected == 0

    def test_idle_drain_stops_immediately(self, engine, master):
        w = add_worker(engine, master)
        engine.run(until=2.0)
        w.drain()
        engine.run(until=3.0)
        assert w.state is WorkerState.STOPPED
        assert master.stats().workers_connected == 0


class TestExecution:
    def test_task_runs_to_completion(self, engine, master):
        add_worker(engine, master)
        task = make_task(execute_s=10.0)
        master.submit(task)
        engine.run(until=30.0)
        assert task.state is TaskState.DONE
        assert task.result is not None
        assert task.result.execute_seconds == 10.0
        assert master.all_done

    def test_turnaround_includes_transfers(self, engine, master, link):
        add_worker(engine, master)
        task = make_task(
            inputs=(FileSpec("in", 100.0),), outputs=(FileSpec("out", 50.0),)
        )
        master.submit(task)
        engine.run(until=60.0)
        # connect 1 + fetch 1 + exec 10 + return 0.5
        assert task.finish_time == pytest.approx(12.5)

    def test_concurrent_tasks_share_worker(self, engine, master):
        add_worker(engine, master)  # 4 cores
        tasks = [make_task(execute_s=10.0) for _ in range(4)]
        master.submit_many(tasks)
        engine.run(until=30.0)
        finish_times = {t.finish_time for t in tasks}
        assert len(finish_times) == 1  # all ran in parallel

    def test_excess_tasks_queue(self, engine, master):
        add_worker(engine, master)
        tasks = [make_task(execute_s=10.0) for _ in range(6)]
        master.submit_many(tasks)
        engine.run(until=12.0)
        stats = master.stats()
        assert stats.done == 4
        assert stats.running == 2

    def test_unknown_resources_occupy_whole_worker(self, engine, link):
        master = Master(engine, link, estimator=ConservativeEstimator())
        add_worker(engine, master)
        tasks = [make_task(declared=False, execute_s=10.0) for _ in range(2)]
        master.submit_many(tasks)
        engine.run(until=12.0)
        assert master.stats().done == 1  # strictly one at a time

    def test_cacheable_input_fetched_once_per_worker(self, engine, master, link):
        add_worker(engine, master)
        db = FileSpec("db", 100.0, cacheable=True)
        tasks = [make_task(inputs=(db,), execute_s=5.0) for _ in range(4)]
        master.submit_many(tasks)
        engine.run(until=60.0)
        assert link.bytes_moved_mb == pytest.approx(100.0)

    def test_concurrent_cacheable_fetch_single_flighted(self, engine, master, link):
        add_worker(engine, master)  # 4 concurrent slots
        db = FileSpec("db", 100.0, cacheable=True)
        tasks = [make_task(inputs=(db,), execute_s=5.0) for _ in range(4)]
        master.submit_many(tasks)
        engine.run(until=2.0)  # all four dispatched immediately
        engine.run(until=60.0)
        assert link.bytes_moved_mb == pytest.approx(100.0)

    def test_cache_affinity_preferred(self, engine, master):
        w1 = add_worker(engine, master, "w1", capacity=ResourceVector(1, 4096, 4096))
        w2 = add_worker(engine, master, "w2", capacity=ResourceVector(1, 4096, 4096))
        db = FileSpec("db", 50.0, cacheable=True)
        first = make_task(inputs=(db,), execute_s=5.0)
        master.submit(first)
        engine.run(until=10.0)
        owner = first.result.worker_name
        second = make_task(inputs=(db,), execute_s=5.0)
        master.submit(second)
        engine.run(until=20.0)
        assert second.result.worker_name == owner


class TestDrainAndKill:
    def test_drain_finishes_running_tasks(self, engine, master):
        w = add_worker(engine, master)
        task = make_task(execute_s=10.0)
        master.submit(task)
        engine.run(until=5.0)
        w.drain()
        engine.run(until=30.0)
        assert task.state is TaskState.DONE
        assert w.state is WorkerState.STOPPED

    def test_draining_worker_accepts_no_new_tasks(self, engine, master):
        w = add_worker(engine, master)
        t1 = make_task(execute_s=10.0)
        master.submit(t1)
        engine.run(until=5.0)
        w.drain()
        t2 = make_task(execute_s=10.0)
        master.submit(t2)
        engine.run(until=30.0)
        assert t1.state is TaskState.DONE
        assert t2.state is TaskState.WAITING  # no worker left for it

    def test_kill_requeues_running_tasks(self, engine, master):
        w = add_worker(engine, master)
        task = make_task(execute_s=100.0)
        master.submit(task)
        engine.run(until=5.0)
        w.kill()
        assert task.state is TaskState.WAITING
        assert task.attempts == 1
        assert master.tasks_requeued == 1
        # A new worker picks the task up again.
        add_worker(engine, master, "w2")
        engine.run(until=200.0)
        assert task.state is TaskState.DONE

    def test_kill_cancels_inflight_transfer(self, engine, master, link):
        w = add_worker(engine, master)
        task = make_task(inputs=(FileSpec("big", 1000.0),), execute_s=10.0)
        master.submit(task)
        engine.run(until=3.0)  # mid-fetch
        w.kill()
        engine.run(until=5.0)
        assert link.active_count == 0

    def test_requeued_task_goes_to_front(self, engine, master):
        w = add_worker(engine, master, capacity=ResourceVector(1, 4096, 4096))
        first = make_task(execute_s=100.0)
        second = make_task(execute_s=5.0)
        master.submit_many([first, second])
        engine.run(until=5.0)
        w.kill()
        assert master.waiting_tasks()[0] is first


class TestStatsAndAccounting:
    def test_stats_counts(self, engine, master):
        add_worker(engine, master)
        tasks = [make_task(execute_s=50.0) for _ in range(6)]
        master.submit_many(tasks)
        engine.run(until=10.0)
        s = master.stats()
        assert s.waiting == 2
        assert s.running == 4
        assert s.workers_busy == 1
        assert s.workers_idle == 0
        assert s.backlog == 6

    def test_cores_in_use_counts_executing_footprints(self, engine, master):
        add_worker(engine, master)
        master.submit_many([make_task(execute_s=50.0) for _ in range(3)])
        engine.run(until=10.0)
        assert master.cores_in_use() == pytest.approx(3.0)

    def test_cores_waiting(self, engine, master):
        master.submit_many([make_task() for _ in range(5)])
        assert master.cores_waiting() == pytest.approx(5.0)

    def test_supplied_cores(self, engine, master):
        add_worker(engine, master)
        add_worker(engine, master, "w2")
        engine.run(until=2.0)
        assert master.supplied_cores() == pytest.approx(8.0)

    def test_double_submit_rejected(self, engine, master):
        task = make_task()
        master.submit(task)
        task.state = TaskState.DONE
        with pytest.raises(RuntimeError):
            master.submit(task)

    def test_completion_callbacks_fire(self, engine, master):
        add_worker(engine, master)
        seen = []
        master.on_complete(lambda t, r: seen.append((t.id, r.worker_name)))
        task = make_task(execute_s=5.0)
        master.submit(task)
        engine.run(until=20.0)
        assert seen == [(task.id, "w1")]
