"""Tests for the bounded LRU worker cache."""

from __future__ import annotations

import pytest

from repro.cluster.resources import ResourceVector
from repro.wq.cache import WorkerCache
from repro.wq.estimator import DeclaredResourceEstimator
from repro.wq.link import Link
from repro.wq.master import Master
from repro.wq.task import FileSpec, Task, TaskState
from repro.wq.worker import Worker


class TestWorkerCacheUnit:
    def test_add_and_contains(self):
        c = WorkerCache(100.0)
        assert c.add("a", 40.0, now=1.0)
        assert "a" in c
        assert c.used_mb == 40.0

    def test_oversized_file_rejected(self):
        c = WorkerCache(100.0)
        assert not c.add("big", 200.0, now=1.0)
        assert "big" not in c

    def test_lru_eviction_order(self):
        c = WorkerCache(100.0)
        c.add("old", 40.0, now=1.0)
        c.add("newer", 40.0, now=2.0)
        c.add("incoming", 40.0, now=3.0)  # must evict "old"
        assert "old" not in c
        assert "newer" in c and "incoming" in c
        assert c.evictions == 1
        assert c.bytes_evicted_mb == 40.0

    def test_touch_protects_from_eviction(self):
        c = WorkerCache(100.0)
        c.add("a", 40.0, now=1.0)
        c.add("b", 40.0, now=2.0)
        c.touch("a", now=3.0)  # a is now the most recent
        c.add("c", 40.0, now=4.0)
        assert "b" not in c
        assert "a" in c

    def test_pinned_files_never_evicted(self):
        c = WorkerCache(100.0)
        c.add("pinned", 60.0, now=1.0)
        c.add("loose", 30.0, now=2.0)
        ok = c.add("incoming", 60.0, now=3.0, pinned={"pinned"})
        # Only "loose" was evictable (30 MB); incoming cannot fit.
        assert not ok
        assert "pinned" in c

    def test_re_add_refreshes_recency(self):
        c = WorkerCache(100.0)
        c.add("a", 50.0, now=1.0)
        c.add("a", 50.0, now=5.0)
        assert len(c) == 1
        assert c.used_mb == 50.0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            WorkerCache(-1.0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            WorkerCache(10.0).add("x", -1.0, now=0.0)


class TestWorkerCacheIntegration:
    """Cache pressure on a live worker: small disk forces re-fetches."""

    @pytest.fixture
    def master(self, engine):
        return Master(engine, Link(engine, 1000.0), estimator=DeclaredResourceEstimator())

    def make_task(self, db_name: str, execute_s=5.0):
        foot = ResourceVector(1, 512, 64)
        return Task(
            "c",
            execute_s=execute_s,
            footprint=foot,
            declared=foot,
            inputs=(FileSpec(db_name, 900.0, cacheable=True),),
        )

    def test_alternating_dbs_thrash_small_cache(self, engine, master):
        # Disk fits only one 900 MB database at a time.
        worker = Worker(
            engine, master, "w1", ResourceVector(1, 4096, 1000.0)
        )
        tasks = [self.make_task("dbA"), self.make_task("dbB"), self.make_task("dbA")]
        for t in tasks:
            master.submit(t)
        engine.run(until=200.0)
        assert all(t.state is TaskState.DONE for t in tasks)
        # dbA was evicted by dbB and re-fetched: 3 transfers of 900 MB.
        assert master.link.bytes_moved_mb == pytest.approx(2700.0)
        assert worker.cache.evictions == 2

    def test_big_cache_avoids_thrash(self, engine, master):
        worker = Worker(
            engine, master, "w1", ResourceVector(1, 4096, 4000.0)
        )
        tasks = [self.make_task("dbA"), self.make_task("dbB"), self.make_task("dbA")]
        for t in tasks:
            master.submit(t)
        engine.run(until=200.0)
        assert master.link.bytes_moved_mb == pytest.approx(1800.0)
        assert worker.cache.evictions == 0
