"""Network partitions: liveness, reconnect backoff, result re-delivery.

The data-plane failure model (DESIGN.md §11): a partitioned worker keeps
executing and holds finished results; the master starts a liveness clock
and declares the worker lost only when it expires; a heal inside the
window re-adopts the runs without a requeue, and held results re-deliver
through the idempotent duplicate-suppression path.
"""

from __future__ import annotations

import pytest

from repro.cluster.resources import ResourceVector
from repro.wq.estimator import DeclaredResourceEstimator
from repro.wq.link import Link
from repro.wq.master import Master
from repro.wq.migration import CheckpointSpec
from repro.wq.task import Task, TaskState
from repro.wq.worker import Worker, WorkerState

FOOT = ResourceVector(1, 512, 128)
CAP = ResourceVector(4, 4096, 4096)


@pytest.fixture
def master(engine):
    return Master(engine, Link(engine, 100.0), estimator=DeclaredResourceEstimator())


def make_task(execute_s=60.0, category="c", declared=None):
    return Task(
        category,
        execute_s=execute_s,
        footprint=FOOT,
        declared=declared if declared is not None else FOOT,
    )


def add_worker(engine, master, name="w1", latency=1.0):
    return Worker(engine, master, name, CAP, connect_latency=latency)


def begin_partition(engine, master, worker, duration_s):
    """What ChaosInjector.begin_partition does, without a cluster."""
    worker.partition()
    master.worker_unreachable(worker)
    engine.call_in(duration_s, worker.heal)


class TestReconnectBoundaries:
    def test_partition_shorter_than_reconnect_base_readopts(self, engine, master):
        """A blip below RECONNECT_BASE_S heals before the first poll:
        the very first reconnect attempt succeeds and the run survives
        without a requeue."""
        w = add_worker(engine, master)
        task = make_task(execute_s=100.0)
        master.submit(task)
        engine.run(until=10.0)
        assert task.id in w.runs
        begin_partition(engine, master, w, duration_s=Worker.RECONNECT_BASE_S / 2)
        engine.run(until=10.0 + Worker.RECONNECT_BASE_S + 0.5)
        assert not w.partitioned
        assert w.reconnects == 1
        assert task.id in w.runs
        assert master.tasks_requeued == 0
        engine.run(until=200.0)
        assert task.state is TaskState.DONE
        assert task.attempts == 0

    def test_partition_straddling_reconnect_max_readopts(self, engine, master):
        """A partition longer than RECONNECT_MAX_S: several polls fail,
        the backoff caps, and the first post-heal poll still re-adopts
        the run without a requeue (liveness window not yet expired).

        Poll times after a t=10 partition: +2, +6, +14, +30, +60 — the
        44 s partition heals between the +30 and +60 polls, past the
        30 s backoff cap."""
        master.liveness_timeout_s = 120.0  # keep liveness out of the race
        w = add_worker(engine, master)
        task = make_task(execute_s=200.0)
        master.submit(task)
        engine.run(until=10.0)
        duration = Worker.RECONNECT_MAX_S + 14.0
        begin_partition(engine, master, w, duration_s=duration)
        engine.run(until=10.0 + duration - 1.0)
        assert w.partitioned and task.id in w.runs  # still executing
        engine.run(until=10.0 + 60.0 + 1.0)  # first post-heal poll
        assert w.reconnects == 1
        assert task.id in w.runs
        assert master.tasks_requeued == 0
        assert master.workers_declared_lost == 0
        engine.run(until=400.0)
        assert task.state is TaskState.DONE
        assert task.attempts == 0

    def test_partition_past_liveness_requeues_exactly_unclaimed(self, engine, master):
        """A partition outliving the master's grace: the worker is
        declared lost and exactly its unclaimed runs requeue — tasks on
        other workers are untouched."""
        w1 = add_worker(engine, master, "w1")
        # Declared to fill the whole worker so t_other cannot co-locate.
        t_long = make_task(execute_s=500.0, declared=CAP)
        master.submit(t_long)
        engine.run(until=5.0)
        assert t_long.id in w1.runs
        w2 = add_worker(engine, master, "w2", latency=1.0)
        t_other = make_task(execute_s=500.0)
        master.submit(t_other)
        engine.run(until=10.0)
        assert t_other.id in w2.runs
        begin_partition(
            engine, master, w1, duration_s=master.liveness_timeout_s + 60.0
        )
        engine.run(until=10.0 + master.liveness_timeout_s + 1.0)
        assert master.workers_declared_lost == 1
        assert master.tasks_requeued == 1
        assert t_long.attempts == 1  # a declared loss burns a retry
        assert "w1" not in master.workers
        # The other worker's run was untouched.
        assert t_other.id in w2.runs
        assert t_other.attempts == 0


class TestPartitionResultDelivery:
    def test_held_result_delivered_after_heal(self, engine, master):
        """The task finishes during the partition; the output is held
        and delivered on the first post-heal poll, completing the task
        exactly once with no retry burned."""
        w = add_worker(engine, master)
        task = make_task(execute_s=20.0)
        master.submit(task)
        engine.run(until=5.0)
        begin_partition(engine, master, w, duration_s=40.0)
        engine.run(until=40.0)  # finishes ~t=26 while partitioned
        assert task.id not in w.runs
        assert len(master.done) == 0  # result held, not delivered
        engine.run(until=80.0)
        assert len(master.done) == 1
        assert task.state is TaskState.DONE
        assert sum(1 for t in master.done if t.id == task.id) == 1

    def test_drain_during_partition_defers_stop_until_delivery(self, engine, master):
        """Scale-down drains a partitioned worker whose runs finished
        locally: the worker must NOT stop (it cannot reach the master,
        and its held results would die with it) — it stays up, heals,
        delivers, then completes the drain."""
        w = add_worker(engine, master)
        task = make_task(execute_s=20.0)
        master.submit(task)
        engine.run(until=5.0)
        begin_partition(engine, master, w, duration_s=60.0)
        engine.run(until=40.0)  # task finished locally, result held
        w.drain()
        assert w.state is WorkerState.DRAINING  # not STOPPED
        assert "w1" in master.workers
        engine.run(until=120.0)
        assert w.state is WorkerState.STOPPED  # drain completed post-heal
        assert len(master.done) == 1
        assert task.state is TaskState.DONE

    def test_kill_during_partition_requeues_at_liveness_expiry(self, engine, master):
        """The partitioned worker's pod dies mid-partition: it cannot
        report the loss, so the master's liveness expiry must requeue
        the tasks — including ones whose results were held — even though
        ``kill()`` already cleared the worker's run table."""
        w = add_worker(engine, master)
        t_run = make_task(execute_s=500.0)
        t_held = make_task(execute_s=15.0)
        master.submit_many([t_held, t_run])
        engine.run(until=5.0)
        begin_partition(
            engine, master, w, duration_s=master.liveness_timeout_s + 100.0
        )
        engine.run(until=30.0)  # t_held finished locally; t_run in flight
        assert t_held.id in {t.id for t in w._held_results}
        w.kill()
        assert not w.runs
        assert w.unfinished_task_ids() == {t_run.id, t_held.id}
        engine.run(until=5.0 + master.liveness_timeout_s + 1.0)
        assert master.workers_declared_lost == 1
        assert master.tasks_requeued == 2
        assert not master.running  # nothing stranded
        # A replacement worker finishes both.
        add_worker(engine, master, "w2")
        engine.run(until=1200.0)
        assert t_run.state is TaskState.DONE
        assert t_held.state is TaskState.DONE


class TestPartitionedMigration:
    """Checkpoint shipped, link partitioned before the resume-ack: the
    worker holds the checkpoint like a held result and the at-most-once
    guard decides its fate on reconnect."""

    SPEC = CheckpointSpec(interval_s=10.0, cost_s=1.0, size_mb=10.0)

    def make_ckpt_task(self, execute_s=200.0):
        return Task(
            "c",
            execute_s=execute_s,
            footprint=FOOT,
            declared=FOOT,
            checkpoint=self.SPEC,
        )

    def start_migration(self, engine, master, w, task):
        master.submit(task)
        engine.run(until=30.0)
        assert task.state is TaskState.RUNNING
        engine.run(until=task.start_time + 25.0)  # two intervals banked
        assert w.migrate_out(task)

    def test_checkpoint_held_through_partition_resumes_exactly_once(
        self, engine, master
    ):
        """Partition strikes between cut and resume-ack, heals inside
        the liveness window: the held checkpoint delivers on reconnect
        and the task resumes exactly once with its banked progress."""
        w = add_worker(engine, master)
        task = self.make_ckpt_task()
        self.start_migration(engine, master, w, task)
        begin_partition(engine, master, w, duration_s=30.0)
        engine.run(until=engine.now + 5.0)  # ship lands while detached
        assert [t.id for t, _p, _l, _s in w._held_migrations] == [task.id]
        assert master.migrations_accepted == 0
        engine.run(until=engine.now + 60.0)  # heal + reconnect poll
        assert not w.partitioned
        assert master.migrations_accepted == 1
        assert not w._held_migrations
        assert task.progress_s == 20.0
        assert task.attempts == 0  # no retry burned across the partition
        engine.run(until=engine.now + 300.0)
        assert task.state is TaskState.DONE
        assert sum(1 for t in master.done if t.id == task.id) == 1

    def test_held_checkpoint_dropped_after_liveness_requeue(self, engine, master):
        """The partition outlives the liveness window: the master
        requeues the task (attempt burned) and re-runs it elsewhere; the
        healed worker's held checkpoint must be dropped as stale — a
        resume now would double-run the task."""
        w1 = add_worker(engine, master)
        task = self.make_ckpt_task(execute_s=400.0)
        self.start_migration(engine, master, w1, task)
        begin_partition(
            engine, master, w1, duration_s=master.liveness_timeout_s + 60.0
        )
        engine.run(until=engine.now + 5.0)
        assert [t.id for t, _p, _l, _s in w1._held_migrations] == [task.id]
        add_worker(engine, master, "w2")
        engine.run(until=engine.now + master.liveness_timeout_s + 5.0)
        assert master.workers_declared_lost == 1
        assert task.attempts == 1  # liveness expiry burned a retry
        engine.run(until=engine.now + 120.0)  # heal + reconnect delivery
        assert master.migrations_stale == 1
        assert master.migrations_accepted == 0
        assert task.progress_s == 0.0  # the stale snapshot banked nothing
        engine.run(until=engine.now + 600.0)
        assert task.state is TaskState.DONE
        assert sum(1 for t in master.done if t.id == task.id) == 1


class TestStaleRunSuppression:
    def test_heal_does_not_readopt_task_redispatched_elsewhere(self, engine, master):
        """The partitioned worker's task is declared lost and restarted
        on another worker; when the original heals, its stale local run
        must be cancelled, not adopted — adoption would double-execute
        and later corrupt the done ledger."""
        w1 = add_worker(engine, master, "w1")
        task = make_task(execute_s=300.0)
        master.submit(task)
        engine.run(until=5.0)
        begin_partition(
            engine, master, w1, duration_s=master.liveness_timeout_s + 30.0
        )
        # Declared lost at ~t=95; a fresh worker picks the requeue up.
        add_worker(engine, master, "w2")
        engine.run(until=5.0 + master.liveness_timeout_s + 5.0)
        assert master.workers_declared_lost == 1
        w2 = master.workers["w2"]
        assert task.id in w2.runs
        # Heal: w1 reconnects with its stale copy still executing.
        engine.run(until=5.0 + master.liveness_timeout_s + 60.0)
        assert w1.reconnects == 1
        assert task.id not in w1.runs  # stale copy cancelled
        assert task.id in w2.runs
        engine.run(until=1000.0)
        assert task.state is TaskState.DONE
        assert sum(1 for t in master.done if t.id == task.id) == 1
