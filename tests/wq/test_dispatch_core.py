"""DispatchCore extraction: config surface, wrapper equivalence, accounting.

The master was split into a pure queue/run-table/retry state machine
(:class:`~repro.wq.dispatch.DispatchCore`, configured by a frozen
:class:`~repro.wq.dispatch.DispatchConfig`) and a session/connection
shell (:class:`~repro.wq.master.Master`). These tests pin the refactor's
contract: the legacy flat-keyword constructor still works (behind a
DeprecationWarning) and produces *bit-identical* journals to the config
style, the two styles cannot be mixed, and the one folded accounting
rule (billable cores) matches what the historical inline copies charged.
"""

from __future__ import annotations

import warnings

import pytest

from repro.cluster.resources import ResourceVector
from repro.sim.engine import Engine
from repro.wq.dispatch import DispatchConfig, DispatchCore
from repro.wq.estimator import ConservativeEstimator, DeclaredResourceEstimator
from repro.wq.link import Link
from repro.wq.master import Master
from repro.wq.task import Task, TaskState
from repro.wq.worker import Worker

FOOT = ResourceVector(1, 512, 128)
WIDE = ResourceVector(2, 512, 128)
CAP = ResourceVector(4, 4096, 4096)


def make_task(execute_s=10.0, footprint=FOOT, declared=FOOT):
    return Task("c", execute_s=execute_s, footprint=footprint, declared=declared)


def drive_workload(engine, master) -> str:
    """A small deterministic workload exercising dispatch, queueing, a
    mid-flight evacuation (retry path), and completion; returns the
    journal digest (task ids are renumbered by first appearance, so
    digests compare across processes/runs)."""
    workers = [
        Worker(engine, master, f"w{i}", CAP, connect_latency=1.0 + i)
        for i in range(2)
    ]
    master.submit_many([make_task(execute_s=5.0 + i) for i in range(6)])
    engine.run(until=20.0)
    master.evacuate_worker(workers[0])
    workers[0].drain()
    engine.run(until=120.0)
    assert master.all_done
    return master.journal.digest()


class TestConstructorStyles:
    def test_flat_kwargs_warn_and_match_config_bit_for_bit(self):
        digests = []
        for style in ("config", "flat"):
            engine = Engine()
            link = Link(engine, 100.0)
            if style == "config":
                master = Master(
                    engine,
                    link,
                    config=DispatchConfig(max_retries=3),
                    estimator=DeclaredResourceEstimator(),
                )
            else:
                with pytest.warns(DeprecationWarning, match="DispatchConfig"):
                    master = Master(
                        engine,
                        link,
                        max_retries=3,
                        estimator=DeclaredResourceEstimator(),
                    )
            assert master.max_retries == 3
            digests.append(drive_workload(engine, master))
        assert digests[0] == digests[1]

    def test_config_style_is_warning_free(self, engine, link):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            Master(engine, link, config=DispatchConfig(max_retries=2))
            Master(engine, link)  # defaults are not "legacy kwargs"

    def test_mixing_config_and_flat_kwargs_is_an_error(self, engine, link):
        with pytest.raises(TypeError, match="not both"):
            Master(engine, link, config=DispatchConfig(), max_retries=3)

    def test_config_validates(self):
        with pytest.raises(ValueError):
            DispatchConfig(max_retries=-1)

    def test_master_is_a_dispatch_core(self, master):
        assert isinstance(master, DispatchCore)
        assert master.config == DispatchConfig()

    def test_core_is_exported_from_the_package_root(self):
        import repro

        assert repro.DispatchCore is DispatchCore
        assert repro.DispatchConfig is DispatchConfig


class TestBillableCores:
    """Satellite regression: the per-attempt core bill used to be
    recomputed inline at every waste charge; it is now the single
    :meth:`DispatchCore._billable_cores` rule."""

    def test_footprint_capped_by_allocation(self, master):
        task = make_task(footprint=WIDE, declared=None)
        assert master._billable_cores(task) == 2.0  # no allocation yet
        task.allocation = FOOT
        assert master._billable_cores(task) == 1.0  # min(footprint, alloc)
        task.allocation = CAP
        assert master._billable_cores(task) == 2.0  # alloc wider than use

    def test_whole_worker_probe_bills_the_footprint_not_the_grant(
        self, engine, link
    ):
        # Conservative placement grants the whole 4-core worker, but the
        # task truly uses 1 core: waste is billed at the footprint, not
        # the reservation — the direction the inline copies could drift.
        master = Master(engine, link, estimator=ConservativeEstimator())
        worker = Worker(engine, master, "w1", CAP, connect_latency=1.0)
        task = make_task(execute_s=100.0, declared=None)
        master.submit(task)
        engine.run(until=11.0)
        assert task.state is TaskState.RUNNING
        assert task.allocation == CAP  # whole-worker grant
        elapsed = engine.now - task.start_time
        expected = elapsed * master._billable_cores(task)
        master.evacuate_worker(worker)
        assert master.wasted_core_s == pytest.approx(expected)
        assert master.wasted_core_s == pytest.approx(elapsed * FOOT.cores)
