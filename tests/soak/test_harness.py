"""End-to-end tests for the chaos-soak harness."""

from __future__ import annotations

import pytest

from repro.soak import (
    SoakConfig,
    first_violation,
    run_soak,
    run_soak_batch,
)

SMOKE = SoakConfig().smoke()


class TestSmokeConfig:
    def test_smoke_is_a_shrunk_copy(self):
        full = SoakConfig()
        assert SMOKE.n_tasks < full.n_tasks
        assert SMOKE.max_nodes < full.max_nodes
        assert SMOKE.schedule.max_events <= full.schedule.max_events


class TestRunSoak:
    @pytest.fixture(scope="class")
    def report(self):
        return run_soak(2, SMOKE)

    def test_run_quiesces_clean(self, report):
        assert report.quiesced
        assert report.ok, [str(v) for v in report.violations]

    def test_schedule_recorded(self, report):
        assert report.seed == 2
        assert len(report.events) >= SMOKE.schedule.min_events

    def test_stats_populated(self, report):
        assert report.stats["tasks_done"] + report.stats["tasks_abandoned"] == 60
        assert report.stats["journal_records"] > 0
        assert report.stats["sim_time_s"] > 0

    def test_describe_names_the_seed(self, report):
        text = report.describe()
        assert "soak seed=2: OK" in text
        assert "strike" in text

    def test_rerun_is_deterministic(self, report):
        again = run_soak(2, SMOKE)
        assert again.events == report.events
        assert again.stats == report.stats
        assert again.ok == report.ok


class TestBatch:
    def test_batch_runs_every_seed(self):
        reports = run_soak_batch([1, 2], SMOKE)
        assert [r.seed for r in reports] == [1, 2]
        assert first_violation(reports) is None

    def test_first_violation_picks_the_failure(self):
        reports = run_soak_batch([1], SMOKE)
        reports[0].violations.append("boom")
        assert first_violation(reports) is reports[0]


class TestFailureReporting:
    def test_failing_report_carries_reproduction_recipe(self):
        report = run_soak(3, SMOKE)
        report.violations.append("synthetic")
        text = report.describe()
        assert "VIOLATION" in text
        assert "python -m repro.experiments soak --seed 3" in text
