"""Tests for the soak invariant checkers.

Ledger checkers are exercised on minimal duck-typed stand-ins (they
only read ``.id``/``.speculation_of``); the journal-replay checker runs
against a real master so the replay path is the production one.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.soak.invariants import (
    check_journal_replay,
    check_migration_protocol,
    check_task_conservation,
    check_trace_consistency,
    check_version_monotonic,
)
from repro.telemetry.events import NULL_TRACER
from repro.cluster.resources import ResourceVector
from repro.wq.estimator import DeclaredResourceEstimator
from repro.wq.link import Link
from repro.wq.master import Master
from repro.wq.task import Task
from repro.wq.worker import Worker


def fake_task(tid):
    return SimpleNamespace(id=tid, speculation_of=None)


def ledgers(submitted, done, abandoned):
    graph = SimpleNamespace(tasks=[fake_task(i) for i in submitted])
    master = SimpleNamespace(
        done=[fake_task(i) for i in done],
        abandoned=[fake_task(i) for i in abandoned],
    )
    return graph, master


class TestTaskConservation:
    def test_clean_partition_of_outcomes_passes(self):
        assert check_task_conservation(*ledgers([1, 2, 3], [1, 3], [2])) == []

    def test_duplicate_completion_flagged(self):
        (v,) = check_task_conservation(*ledgers([1, 2], [1, 1, 2], []))
        assert v.invariant == "task-conservation"
        assert "more than once" in v.detail

    def test_done_and_abandoned_flagged(self):
        violations = check_task_conservation(*ledgers([1, 2], [1, 2], [2]))
        assert any("both completed and abandoned" in v.detail for v in violations)

    def test_lost_task_flagged(self):
        (v,) = check_task_conservation(*ledgers([1, 2, 3], [1], [2]))
        assert "neither completed nor abandoned" in v.detail

    def test_phantom_resolution_flagged(self):
        (v,) = check_task_conservation(*ledgers([1], [1, 9], []))
        assert "never submitted" in v.detail


class TestVersionMonotonic:
    def test_increasing_stream_passes(self):
        probe = SimpleNamespace(versions={"Pod": [1, 2, 5, 9], "Node": []})
        assert check_version_monotonic(probe) == []

    def test_regression_flagged_once_per_kind(self):
        probe = SimpleNamespace(versions={"Pod": [1, 5, 3, 2]})
        (v,) = check_version_monotonic(probe)
        assert v.invariant == "version-monotonic"
        assert "version 3 after 5" in v.detail


class TestJournalReplay:
    @pytest.fixture
    def quiesced_master(self, engine):
        master = Master(
            engine, Link(engine, 100.0), estimator=DeclaredResourceEstimator()
        )
        Worker(engine, master, "w1", ResourceVector(4, 4096, 4096))
        foot = ResourceVector(1, 512, 128)
        for _ in range(3):
            master.submit(Task("c", execute_s=30.0, footprint=foot, declared=foot))
        engine.run(until=500.0)
        assert len(master.done) == 3
        return master

    def test_quiesced_master_replays_exactly(self, quiesced_master):
        assert check_journal_replay(quiesced_master) == []

    def test_tampered_done_ledger_flagged(self, quiesced_master):
        quiesced_master.done.pop()
        violations = check_journal_replay(quiesced_master)
        assert any(v.invariant == "journal-replay" for v in violations)

    def test_reordered_ledger_flagged_as_order_only(self, quiesced_master):
        quiesced_master.done.reverse()
        (v,) = check_journal_replay(quiesced_master)
        assert "order_only=True" in v.detail


def migration_journal(*records):
    """A duck-typed master exposing only ``journal.records``."""

    def rec(op, tid, progress=None, execute_s=100.0):
        return SimpleNamespace(
            op=op,
            task=SimpleNamespace(id=tid, execute_s=execute_s),
            progress=progress,
        )

    return SimpleNamespace(
        journal=SimpleNamespace(records=[rec(*r[:2], **r[2]) for r in records])
    )


class TestMigrationProtocol:
    def test_clean_migration_sequence_passes(self):
        master = migration_journal(
            ("submit", 1, {}),
            ("dispatch", 1, {}),
            ("checkpoint", 1, {"progress": 10.0}),
            ("checkpoint", 1, {"progress": 20.0}),
            ("migrate_out", 1, {"progress": 20.0}),
            ("migrate_in", 1, {"progress": 20.0}),
            ("complete", 1, {}),
        )
        assert check_migration_protocol(master) == []

    def test_progress_regression_flagged(self):
        master = migration_journal(
            ("checkpoint", 1, {"progress": 20.0}),
            ("checkpoint", 1, {"progress": 10.0}),
        )
        (v,) = check_migration_protocol(master)
        assert v.invariant == "migration-protocol"
        assert "regressed" in v.detail

    def test_overbanked_progress_flagged(self):
        master = migration_journal(
            ("checkpoint", 1, {"progress": 150.0, "execute_s": 100.0}),
        )
        (v,) = check_migration_protocol(master)
        assert "more than its" in v.detail

    def test_duplicate_resume_flagged(self):
        master = migration_journal(
            ("dispatch", 1, {}),
            ("migrate_in", 1, {}),  # no migrate_out cleared the attempt
        )
        (v,) = check_migration_protocol(master)
        assert "duplicate resume" in v.detail

    def test_interleaved_tasks_tracked_independently(self):
        master = migration_journal(
            ("dispatch", 1, {}),
            ("dispatch", 2, {}),
            ("migrate_out", 1, {"progress": 10.0}),
            ("migrate_in", 1, {"progress": 10.0}),
            ("complete", 2, {}),
            ("complete", 1, {}),
        )
        assert check_migration_protocol(master) == []

    def test_real_migrated_run_passes(self, engine):
        """A production master that actually migrated satisfies the
        checker (not just the synthetic journals above)."""
        from repro.wq.migration import CheckpointSpec

        master = Master(
            engine, Link(engine, 100.0), estimator=DeclaredResourceEstimator()
        )
        Worker(engine, master, "w1", ResourceVector(4, 4096, 4096))
        Worker(engine, master, "w2", ResourceVector(4, 4096, 4096))
        foot = ResourceVector(1, 512, 128)
        task = Task(
            "c",
            execute_s=60.0,
            footprint=foot,
            declared=foot,
            checkpoint=CheckpointSpec(interval_s=10.0, cost_s=1.0, size_mb=10.0),
        )
        master.submit(task)
        engine.run(until=30.0)
        host = next(w for w in master.workers.values() if task.id in w.runs)
        assert host.migrate_out(task)
        engine.run(until=200.0)
        assert len(master.done) == 1
        assert master.migrations_accepted == 1
        assert check_migration_protocol(master) == []


class TestTraceConsistency:
    def test_disabled_tracer_is_vacuously_consistent(self):
        master = SimpleNamespace(done=[], abandoned=[])
        assert check_trace_consistency(master, None, NULL_TRACER) == []
