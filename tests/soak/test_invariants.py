"""Tests for the soak invariant checkers.

Ledger checkers are exercised on minimal duck-typed stand-ins (they
only read ``.id``/``.speculation_of``); the journal-replay checker runs
against a real master so the replay path is the production one.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.soak.invariants import (
    check_journal_replay,
    check_task_conservation,
    check_trace_consistency,
    check_version_monotonic,
)
from repro.telemetry.events import NULL_TRACER
from repro.cluster.resources import ResourceVector
from repro.wq.estimator import DeclaredResourceEstimator
from repro.wq.link import Link
from repro.wq.master import Master
from repro.wq.task import Task
from repro.wq.worker import Worker


def fake_task(tid):
    return SimpleNamespace(id=tid, speculation_of=None)


def ledgers(submitted, done, abandoned):
    graph = SimpleNamespace(tasks=[fake_task(i) for i in submitted])
    master = SimpleNamespace(
        done=[fake_task(i) for i in done],
        abandoned=[fake_task(i) for i in abandoned],
    )
    return graph, master


class TestTaskConservation:
    def test_clean_partition_of_outcomes_passes(self):
        assert check_task_conservation(*ledgers([1, 2, 3], [1, 3], [2])) == []

    def test_duplicate_completion_flagged(self):
        (v,) = check_task_conservation(*ledgers([1, 2], [1, 1, 2], []))
        assert v.invariant == "task-conservation"
        assert "more than once" in v.detail

    def test_done_and_abandoned_flagged(self):
        violations = check_task_conservation(*ledgers([1, 2], [1, 2], [2]))
        assert any("both completed and abandoned" in v.detail for v in violations)

    def test_lost_task_flagged(self):
        (v,) = check_task_conservation(*ledgers([1, 2, 3], [1], [2]))
        assert "neither completed nor abandoned" in v.detail

    def test_phantom_resolution_flagged(self):
        (v,) = check_task_conservation(*ledgers([1], [1, 9], []))
        assert "never submitted" in v.detail


class TestVersionMonotonic:
    def test_increasing_stream_passes(self):
        probe = SimpleNamespace(versions={"Pod": [1, 2, 5, 9], "Node": []})
        assert check_version_monotonic(probe) == []

    def test_regression_flagged_once_per_kind(self):
        probe = SimpleNamespace(versions={"Pod": [1, 5, 3, 2]})
        (v,) = check_version_monotonic(probe)
        assert v.invariant == "version-monotonic"
        assert "version 3 after 5" in v.detail


class TestJournalReplay:
    @pytest.fixture
    def quiesced_master(self, engine):
        master = Master(
            engine, Link(engine, 100.0), estimator=DeclaredResourceEstimator()
        )
        Worker(engine, master, "w1", ResourceVector(4, 4096, 4096))
        foot = ResourceVector(1, 512, 128)
        for _ in range(3):
            master.submit(Task("c", execute_s=30.0, footprint=foot, declared=foot))
        engine.run(until=500.0)
        assert len(master.done) == 3
        return master

    def test_quiesced_master_replays_exactly(self, quiesced_master):
        assert check_journal_replay(quiesced_master) == []

    def test_tampered_done_ledger_flagged(self, quiesced_master):
        quiesced_master.done.pop()
        violations = check_journal_replay(quiesced_master)
        assert any(v.invariant == "journal-replay" for v in violations)

    def test_reordered_ledger_flagged_as_order_only(self, quiesced_master):
        quiesced_master.done.reverse()
        (v,) = check_journal_replay(quiesced_master)
        assert "order_only=True" in v.detail


class TestTraceConsistency:
    def test_disabled_tracer_is_vacuously_consistent(self):
        master = SimpleNamespace(done=[], abandoned=[])
        assert check_trace_consistency(master, None, NULL_TRACER) == []
