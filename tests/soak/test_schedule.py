"""Tests for the seeded fault-schedule generator."""

from __future__ import annotations

import pytest

from repro.soak.schedule import (
    FAULT_KIND_WEIGHTS,
    FAULT_KINDS,
    FaultEvent,
    SoakScheduleConfig,
    generate_schedule,
)

PARAM_RANGES = {
    "preemption_wave": {"count": (1.0, 3.0)},
    "partition": {"duration_s": (10.0, 180.0)},
    "master_crash": {"restart_delay_s": (30.0, 90.0)},
    "api_outage": {"duration_s": (60.0, 240.0)},
    "boot_failures": {"prob": (0.3, 0.9), "duration_s": (60.0, 240.0)},
    "pull_stall": {"factor": (2.0, 8.0), "duration_s": (60.0, 240.0)},
}


class TestDeterminism:
    def test_same_seed_bit_identical(self):
        for seed in range(20):
            assert generate_schedule(seed) == generate_schedule(seed)

    def test_different_seeds_differ(self):
        schedules = {tuple(generate_schedule(s)) for s in range(10)}
        assert len(schedules) > 1

    def test_config_changes_schedule(self):
        tight = SoakScheduleConfig(horizon_s=200.0, start_after_s=100.0)
        assert generate_schedule(5, tight) != generate_schedule(5)


class TestShape:
    def test_counts_within_bounds(self):
        cfg = SoakScheduleConfig(min_events=4, max_events=7)
        for seed in range(30):
            assert 4 <= len(generate_schedule(seed, cfg)) <= 7

    def test_times_within_window_and_sorted(self):
        cfg = SoakScheduleConfig(horizon_s=500.0, start_after_s=120.0)
        for seed in range(30):
            events = generate_schedule(seed, cfg)
            assert all(120.0 <= e.at_s <= 500.0 for e in events)
            assert [e.at_s for e in events] == sorted(e.at_s for e in events)

    def test_only_known_kinds(self):
        for seed in range(30):
            assert all(e.kind in FAULT_KINDS for e in generate_schedule(seed))

    def test_all_kinds_eventually_sampled(self):
        seen = set()
        for seed in range(200):
            seen.update(e.kind for e in generate_schedule(seed))
        assert seen == set(FAULT_KIND_WEIGHTS)


class TestBudgets:
    def test_control_plane_budgets_respected(self):
        for seed in range(100):
            events = generate_schedule(seed)
            kinds = [e.kind for e in events]
            assert kinds.count("master_crash") <= 1
            assert kinds.count("api_outage") <= 1

    def test_raised_budget_allows_more(self):
        cfg = SoakScheduleConfig(
            min_events=30, max_events=30, max_master_crashes=5, max_api_outages=5
        )
        crashes = max(
            [e.kind for e in generate_schedule(s, cfg)].count("master_crash")
            for s in range(20)
        )
        assert 1 < crashes <= 5


class TestParams:
    def test_param_values_in_documented_ranges(self):
        for seed in range(100):
            for event in generate_schedule(seed):
                for key, (lo, hi) in PARAM_RANGES.get(event.kind, {}).items():
                    assert lo <= event.param(key) <= hi, (event, key)

    def test_param_lookup_with_default(self):
        event = FaultEvent(at_s=1.0, kind="node_kill")
        assert event.param("duration_s", 42.0) == 42.0

    def test_str_is_readable(self):
        event = FaultEvent(at_s=90.0, kind="partition", params=(("duration_s", 60.0),))
        assert str(event) == "t=90s partition(duration_s=60)"


class TestConfigValidation:
    def test_horizon_must_exceed_start(self):
        with pytest.raises(ValueError):
            SoakScheduleConfig(horizon_s=90.0, start_after_s=90.0)

    def test_event_bounds_validated(self):
        with pytest.raises(ValueError):
            SoakScheduleConfig(min_events=0)
        with pytest.raises(ValueError):
            SoakScheduleConfig(min_events=5, max_events=3)
