"""Tests for trace export (CSV series, JSON summaries)."""

from __future__ import annotations

import csv
import json

import pytest

from repro.cluster.cluster import ClusterConfig
from repro.cluster.node import N1_STANDARD_4_RESERVED
from repro.experiments.runner import StackConfig, run_hta_experiment
from repro.metrics.export import (
    export_series_csv,
    export_summary_json,
    series_rows,
    summary_dict,
)
from repro.workloads.synthetic import uniform_bag


@pytest.fixture(scope="module")
def result():
    return run_hta_experiment(
        uniform_bag(10, execute_s=30.0, declared=True),
        stack_config=StackConfig(
            cluster=ClusterConfig(
                machine_type=N1_STANDARD_4_RESERVED, min_nodes=2, max_nodes=4
            ),
            seed=4,
        ),
    )


class TestSeriesRows:
    def test_grid_covers_whole_window(self, result):
        rows = series_rows(result, dt=10.0)
        t0, t1 = result.accountant.window()
        assert rows[0]["time_s"] == 0.0
        assert rows[-1]["time_s"] == pytest.approx(t1 - t0)

    def test_values_match_series(self, result):
        rows = series_rows(result, dt=25.0)
        t0, _ = result.accountant.window()
        for row in rows:
            assert row["supply"] == result.series("supply").value_at(t0 + row["time_s"])

    def test_custom_series_selection(self, result):
        rows = series_rows(result, series_names=("nodes",), dt=50.0)
        assert set(rows[0].keys()) == {"time_s", "nodes"}

    def test_invalid_dt_rejected(self, result):
        with pytest.raises(ValueError):
            series_rows(result, dt=0)


class TestFiles:
    def test_csv_roundtrip(self, result, tmp_path):
        path = tmp_path / "series.csv"
        n = export_series_csv(result, str(path), dt=20.0)
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == n
        assert float(rows[0]["time_s"]) == 0.0
        assert "supply" in rows[0]

    def test_json_summary_roundtrip(self, result, tmp_path):
        path = tmp_path / "summary.json"
        export_summary_json(result, str(path))
        data = json.loads(path.read_text())
        assert data["name"] == "HTA"
        assert data["tasks_completed"] == 10
        assert data["makespan_s"] == pytest.approx(result.makespan_s)
        assert isinstance(data["extras"], dict)

    def test_summary_dict_is_json_serializable(self, result):
        json.dumps(summary_dict(result))
