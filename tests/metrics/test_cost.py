"""Tests for the pay-as-you-go cost model."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import ClusterConfig
from repro.cluster.node import N1_STANDARD_4_RESERVED
from repro.experiments.runner import StackConfig, run_hta_experiment
from repro.metrics.cost import CostBreakdown, CostModel, DEFAULT_HOURLY_PRICES
from repro.workloads.synthetic import uniform_bag


@pytest.fixture(scope="module")
def result():
    return run_hta_experiment(
        uniform_bag(12, execute_s=30.0, declared=True),
        stack_config=StackConfig(
            cluster=ClusterConfig(
                machine_type=N1_STANDARD_4_RESERVED, min_nodes=2, max_nodes=4
            ),
            seed=8,
        ),
    )


class TestCostBreakdown:
    def test_total_is_hours_times_price(self):
        b = CostBreakdown(node_hours=10.0, hourly_price=0.19)
        assert b.total_usd == pytest.approx(1.9)

    def test_str_rendering(self):
        assert "node-hours" in str(CostBreakdown(1.0, 0.19))


class TestCostModel:
    def test_default_prices_cover_builtin_machines(self):
        model = CostModel()
        for name in ("n1-standard-4", "n1-standard-4-reserved", "gke-3cpu-12gb"):
            assert model.price_for(name) > 0

    def test_unknown_machine_raises(self):
        with pytest.raises(KeyError):
            CostModel().price_for("quantum-9000")

    def test_unknown_machine_error_is_informative(self):
        with pytest.raises(KeyError, match="quantum-9000"):
            CostModel().price_for("quantum-9000")
        with pytest.raises(KeyError, match="default_hourly_price"):
            CostModel().price_for("quantum-9000")

    def test_default_hourly_price_fallback(self):
        model = CostModel(default_hourly_price=0.25)
        # Known machines still use their table price ...
        assert model.price_for("n1-standard-4") == DEFAULT_HOURLY_PRICES["n1-standard-4"]
        # ... unknown machines fall back instead of raising.
        assert model.price_for("quantum-9000") == 0.25

    def test_negative_price_rejected(self):
        with pytest.raises(ValueError):
            CostModel({"m": -1.0})
        with pytest.raises(ValueError):
            CostModel(default_hourly_price=-0.1)

    def test_cost_of_integrates_node_series(self, result):
        model = CostModel()
        breakdown = model.cost_of(result, "n1-standard-4-reserved")
        # At least the 2 base nodes for the whole run.
        min_hours = 2 * result.accounting.runtime_s / 3600.0
        assert breakdown.node_hours >= min_hours * 0.99
        assert breakdown.total_usd > 0

    def test_cost_consistent_with_mean_node_count(self, result):
        model = CostModel()
        breakdown = model.cost_of(result, "n1-standard-4-reserved")
        t0, t1 = result.accountant.window()
        mean_nodes = result.series("nodes").mean(t0, t1)
        expected_hours = mean_nodes * (t1 - t0) / 3600.0
        assert breakdown.node_hours == pytest.approx(expected_hours, rel=1e-9)

    def test_savings_zero_against_self(self, result):
        model = CostModel()
        assert model.savings(result, result, "n1-standard-4-reserved") == pytest.approx(0.0)

    def test_savings_sign(self, result):
        model = CostModel()
        # A hypothetical baseline twice as expensive → 50% savings.
        class Doubled:
            accountant = result.accountant

            @staticmethod
            def series(name):
                import copy

                s = copy.deepcopy(result.series(name))
                s.values = [v * 2 for v in s.values]
                s.initial *= 2
                return s

        assert model.savings(result, Doubled(), "n1-standard-4-reserved") == pytest.approx(
            0.5, abs=0.01
        )
