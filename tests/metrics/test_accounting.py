"""Unit tests for RIU/RSH/RS/RW accounting."""

from __future__ import annotations

import pytest

from repro.metrics.accounting import AccountingSummary, ResourceAccountant
from repro.metrics.summary import comparison_factors, format_summary_table, format_series_table


class MutableGauges:
    def __init__(self):
        self.supply = 0.0
        self.in_use = 0.0
        self.shortage = 0.0
        self.nodes = 0.0


@pytest.fixture
def gauges():
    return MutableGauges()


@pytest.fixture
def accountant(engine, gauges):
    return ResourceAccountant(
        engine,
        supply=lambda: gauges.supply,
        in_use=lambda: gauges.in_use,
        shortage=lambda: gauges.shortage,
        nodes=lambda: gauges.nodes,
        period=1.0,
    )


class TestSampling:
    def test_derived_series_waste_and_demand(self, engine, gauges, accountant):
        gauges.supply, gauges.in_use, gauges.shortage = 10.0, 6.0, 3.0
        accountant.start()
        engine.run(until=5.0)
        accountant.stop()
        assert accountant.series("waste").value_at(2.0) == pytest.approx(4.0)
        assert accountant.series("demand").value_at(2.0) == pytest.approx(9.0)

    def test_waste_clamped_at_zero(self, engine, gauges, accountant):
        gauges.supply, gauges.in_use = 5.0, 8.0  # momentary over-use
        accountant.start()
        engine.run(until=2.0)
        accountant.stop()
        assert accountant.series("waste").value_at(1.0) == 0.0

    def test_accumulated_integrals(self, engine, gauges, accountant):
        accountant.start()
        gauges.supply, gauges.in_use = 10.0, 10.0

        def dip():
            gauges.in_use = 0.0

        engine.call_in(5.0, dip)
        engine.run(until=10.0)
        accountant.stop()
        # waste: 0 for 5s (in_use=10), then 10 for 5s → ~50 core*s.
        assert accountant.accumulated("waste") == pytest.approx(50.0, rel=0.15)

    def test_window_uses_start_stop(self, engine, gauges, accountant):
        engine.run(until=3.0)
        accountant.start()
        engine.run(until=7.0)
        accountant.stop()
        t0, t1 = accountant.window()
        assert (t0, t1) == (3.0, 7.0)


class TestSummary:
    def test_summary_fields(self, engine, gauges, accountant):
        gauges.supply, gauges.in_use, gauges.shortage = 8.0, 4.0, 2.0
        accountant.start()
        engine.run(until=10.0)
        accountant.stop()
        s = accountant.summarize()
        assert s.runtime_s == pytest.approx(10.0)
        assert s.mean_supply_cores == pytest.approx(8.0)
        assert s.mean_in_use_cores == pytest.approx(4.0)
        assert s.utilization == pytest.approx(0.5)
        assert s.peak_supply_cores == 8.0
        assert s.peak_shortage_cores == 2.0
        assert s.accumulated_waste_core_s == pytest.approx(40.0)
        assert s.accumulated_shortage_core_s == pytest.approx(20.0)

    def test_zero_supply_utilization(self):
        s = AccountingSummary(10, 0, 0, 0.0, 0.0, 0, 0)
        assert s.utilization == 0.0

    def test_row_dict(self):
        s = AccountingSummary(10, 5, 2, 4.0, 2.0, 8, 3)
        row = s.row()
        assert row["runtime_s"] == 10
        assert row["waste_core_s"] == 5


class TestFormatting:
    def _summary(self, runtime, waste, shortage, supply=10.0, used=5.0):
        return AccountingSummary(runtime, waste, shortage, supply, used, supply, 0)

    def test_summary_table_contains_rows(self):
        table = format_summary_table(
            {"HTA": self._summary(3060, 9146, 40680), "HPA": self._summary(2656, 51324, 34813)}
        )
        assert "HTA" in table and "HPA" in table
        assert "9146" in table
        assert "Runtime" in table

    def test_comparison_factors_match_paper_math(self):
        hta = self._summary(3060, 9146, 40680)
        hpa20 = self._summary(2656, 51324, 34813)
        f = comparison_factors(hta, hpa20)
        assert f["waste_reduction"] == pytest.approx(5.61, abs=0.01)
        assert f["runtime_increase"] == pytest.approx(0.152, abs=0.01)
        assert f["speedup"] == pytest.approx(2656 / 3060, abs=0.001)

    def test_comparison_handles_zero_baseline(self):
        f = comparison_factors(self._summary(10, 0, 0), self._summary(10, 0, 0))
        assert f["waste_reduction"] == float("inf")

    def test_series_table_downsamples(self):
        times = list(range(100))
        cols = {"x": [float(i) for i in range(100)]}
        out = format_series_table(times, cols, max_rows=10)
        assert out.count("\n") <= 13

    def test_series_table_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_series_table([1, 2], {"x": [1.0]})
