"""Property-based tests for the kernel data structures.

Invariants of :class:`StepSeries` (exact integration) and the engine's
event ordering, under arbitrary inputs.
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.sim.engine import Engine
from repro.sim.tracing import StepSeries

# Monotone non-decreasing time points with values.
changes_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    ),
    min_size=0,
    max_size=40,
).map(lambda pairs: sorted(pairs, key=lambda p: p[0]))


def build_series(changes, initial=0.0) -> StepSeries:
    s = StepSeries("prop", initial=initial)
    for t, v in changes:
        s.record(t, v)
    return s


class TestStepSeriesProperties:
    @given(changes=changes_strategy)
    def test_integral_additivity(self, changes):
        """∫[a,c] = ∫[a,b] + ∫[b,c] for any split point."""
        s = build_series(changes)
        a, b, c = 0.0, 5000.0, 10000.0
        whole = s.integrate(a, c)
        split = s.integrate(a, b) + s.integrate(b, c)
        assert math.isclose(whole, split, rel_tol=1e-9, abs_tol=1e-6)

    @given(changes=changes_strategy)
    def test_integral_bounded_by_extremes(self, changes):
        s = build_series(changes)
        t0, t1 = 0.0, 10000.0
        values = [s.value_at(t0)] + [v for t, v in changes if t0 <= t <= t1]
        lo, hi = min(values), max(values)
        integral = s.integrate(t0, t1)
        width = t1 - t0
        assert lo * width - 1e-6 <= integral <= hi * width + 1e-6

    @given(changes=changes_strategy)
    def test_mean_within_range(self, changes):
        s = build_series(changes)
        values = [s.value_at(0.0)] + [v for _, v in changes]
        mean = s.mean(0.0, 10000.0)
        assert min(values) - 1e-9 <= mean <= max(values) + 1e-9

    @given(changes=changes_strategy)
    def test_value_at_matches_last_change_before(self, changes):
        s = build_series(changes)
        for t, _ in changes:
            expected = [v for ct, v in changes if ct <= t]
            if expected:
                assert s.value_at(t) == expected[-1]

    @given(changes=changes_strategy, dt=st.floats(min_value=0.5, max_value=500))
    def test_resample_points_agree_with_value_at(self, changes, dt):
        s = build_series(changes)
        ts, vs = s.resample(0.0, 1000.0, dt)
        for t, v in zip(ts, vs):
            assert v == s.value_at(t)

    @given(changes=changes_strategy)
    def test_maximum_is_attained(self, changes):
        s = build_series(changes, initial=0.0)
        peak = s.maximum(0.0, 10000.0)
        candidates = [s.value_at(0.0)] + [v for _, v in changes]
        assert peak in candidates


class TestEngineProperties:
    @given(
        delays=st.lists(
            st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
            min_size=1,
            max_size=50,
        )
    )
    def test_events_always_fire_in_time_order(self, delays):
        engine = Engine()
        fired = []
        for d in delays:
            engine.call_in(d, lambda d=d: fired.append(engine.now))
        engine.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(
        delays=st.lists(
            st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
            min_size=1,
            max_size=30,
        ),
        horizon=st.floats(min_value=0.0, max_value=1e3),
    )
    def test_run_until_never_fires_beyond_horizon(self, delays, horizon):
        engine = Engine()
        fired = []
        for d in delays:
            engine.call_in(d, lambda: fired.append(engine.now))
        engine.run(until=horizon)
        assert all(t <= horizon for t in fired)
        assert engine.now >= horizon or not delays
