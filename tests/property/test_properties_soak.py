"""Property-based soak: invariants hold for *any* seeded fault schedule.

The checkers inside :func:`repro.soak.harness.run_soak` include the
journal-replay invariant — replaying the transaction journal at
quiescence must reconstruct the live master's done/abandoned ledgers
bit-for-bit, completions in the same order — so drawing arbitrary seeds
here property-tests crash recovery against the whole chaos vocabulary
(preemption waves, partitions, master crashes, API outages, ...).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.soak import SoakConfig, generate_schedule, run_soak
from repro.soak.schedule import SoakScheduleConfig

FAST = SoakConfig().smoke()
FAST_MIGRATE = SoakConfig(migrate=True).smoke()
FAST_INTEGRITY = SoakConfig(integrity=True).smoke()
FAST_SHARDED = SoakConfig(shards=4, shard_crash=True).smoke()


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_journal_replay_bit_identical_under_any_schedule(seed):
    report = run_soak(seed, FAST)
    assert report.quiesced, report.describe()
    replay_violations = [
        v for v in report.violations if v.invariant == "journal-replay"
    ]
    assert not replay_violations, report.describe()


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_every_invariant_holds_under_any_schedule(seed):
    report = run_soak(seed, FAST)
    assert report.ok, report.describe()


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_every_invariant_holds_with_migrations_enabled(seed):
    """Satellite: for any seeded chaos schedule *including migrations*
    (the ``migrate`` primitive in the pool, preemption drains migrating
    instead of requeueing), journal replay stays bit-identical and task
    conservation holds — total completed work equals submitted work."""
    report = run_soak(seed, FAST_MIGRATE)
    assert report.quiesced, report.describe()
    assert report.ok, report.describe()


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_every_invariant_holds_with_integrity_enabled(seed):
    """Satellite: for any seeded chaos schedule *including value faults*
    (silent result/checkpoint corruption, black-hole workers, health
    ledger armed), every invariant holds — in particular journal replay
    stays bit-identical with VERIFY_FAIL/QUARANTINE/UNQUARANTINE records
    in the stream, and no corrupted result ever reaches COMPLETE."""
    report = run_soak(seed, FAST_INTEGRITY)
    assert report.quiesced, report.describe()
    assert report.ok, report.describe()
    assert report.stats["corrupted_completes"] == 0, report.describe()


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**9))
def test_schedule_generation_is_pure(seed):
    assert generate_schedule(seed) == generate_schedule(seed)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**9))
def test_migrate_flag_leaves_other_draws_bit_identical(seed):
    """Enabling the opt-in ``migrate`` kind only *adds* events: the
    non-migrate subsequence of a migrate-enabled schedule never loses
    determinism guarantees — generation stays pure under the flag."""
    cfg = SoakScheduleConfig(migrate=True)
    assert generate_schedule(seed, cfg) == generate_schedule(seed, cfg)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_every_invariant_holds_with_shard_crashes_enabled(seed):
    """Satellite (PR 10): for any seeded chaos schedule *including
    shard crashes* (the plane runs as 4 masters behind a foreman with a
    failover coordinator, the ``shard_crash`` primitive in the pool),
    every invariant holds — in particular the failover-protocol audit
    on the merged journal: no task resumed twice, every
    FAILOVER_OUT/IN pair balanced, nothing stranded on a dead shard."""
    report = run_soak(seed, FAST_SHARDED)
    assert report.quiesced, report.describe()
    assert report.ok, report.describe()


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**9))
def test_shard_crash_flag_is_opt_in_only(seed):
    """The ``shard_crash`` kind is strictly additive: a default
    schedule is bit-identical whether or not the flag exists, and a
    shard-crash-enabled schedule is itself pure."""
    assert generate_schedule(seed, SoakScheduleConfig()) == generate_schedule(
        seed, SoakScheduleConfig(shard_crash=False)
    )
    cfg = SoakScheduleConfig(shard_crash=True)
    assert generate_schedule(seed, cfg) == generate_schedule(seed, cfg)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**9))
def test_integrity_flag_is_opt_in_only(seed):
    """The value-fault kinds are strictly additive: a default schedule
    is bit-identical whether or not the ``integrity`` machinery exists,
    and an integrity-enabled schedule is itself pure."""
    assert generate_schedule(seed, SoakScheduleConfig()) == generate_schedule(
        seed, SoakScheduleConfig(integrity=False)
    )
    cfg = SoakScheduleConfig(integrity=True)
    assert generate_schedule(seed, cfg) == generate_schedule(seed, cfg)
