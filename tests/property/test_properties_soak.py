"""Property-based soak: invariants hold for *any* seeded fault schedule.

The checkers inside :func:`repro.soak.harness.run_soak` include the
journal-replay invariant — replaying the transaction journal at
quiescence must reconstruct the live master's done/abandoned ledgers
bit-for-bit, completions in the same order — so drawing arbitrary seeds
here property-tests crash recovery against the whole chaos vocabulary
(preemption waves, partitions, master crashes, API outages, ...).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.soak import SoakConfig, generate_schedule, run_soak

FAST = SoakConfig().smoke()


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_journal_replay_bit_identical_under_any_schedule(seed):
    report = run_soak(seed, FAST)
    assert report.quiesced, report.describe()
    replay_violations = [
        v for v in report.violations if v.invariant == "journal-replay"
    ]
    assert not replay_violations, report.describe()


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_every_invariant_holds_under_any_schedule(seed):
    report = run_soak(seed, FAST)
    assert report.ok, report.describe()


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**9))
def test_schedule_generation_is_pure(seed):
    assert generate_schedule(seed) == generate_schedule(seed)
