"""Property tests: render→parse round-trip of Makeflow workflows.

For any generated DAG, ``parse(render(g))`` must preserve the structure:
task count, categories, resource declarations, runtimes, file names and
sizes, and the dependency relation.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.cluster.resources import ResourceVector
from repro.makeflow.dag import WorkflowGraph
from repro.makeflow.parser import parse_makeflow
from repro.makeflow.render import render_makeflow
from repro.wq.task import FileSpec, Task


@st.composite
def workflow_graphs(draw) -> WorkflowGraph:
    """Random layered DAGs with plain-identifier file names."""
    n_layers = draw(st.integers(min_value=1, max_value=4))
    layer_sizes = [draw(st.integers(min_value=1, max_value=5)) for _ in range(n_layers)]
    tasks = []
    prev_outputs: list[FileSpec] = []
    file_id = 0
    for layer, size in enumerate(layer_sizes):
        outputs = []
        category = f"cat{draw(st.integers(min_value=0, max_value=2))}"
        cores = draw(st.sampled_from([1.0, 2.0, 4.0]))
        mem = draw(st.sampled_from([512.0, 1024.0, 4096.0]))
        runtime = draw(st.floats(min_value=1.0, max_value=500.0).map(lambda x: round(x, 2)))
        for i in range(size):
            file_id += 1
            out = FileSpec(
                f"f{file_id}.out",
                round(draw(st.floats(min_value=0.1, max_value=2000.0)), 3),
                cacheable=draw(st.booleans()),
            )
            outputs.append(out)
            if prev_outputs:
                n_deps = draw(st.integers(min_value=1, max_value=len(prev_outputs)))
                inputs = tuple(prev_outputs[:n_deps])
            else:
                file_id += 1
                inputs = (FileSpec(f"f{file_id}.in", 1.0),)
            tasks.append(
                Task(
                    category,
                    execute_s=runtime,
                    footprint=ResourceVector(cores, mem, 64.0),
                    declared=ResourceVector(cores, mem, 64.0),
                    inputs=inputs,
                    outputs=(out,),
                    command=f"cmd-{file_id}",
                )
            )
        prev_outputs = outputs
    return WorkflowGraph(tasks)


class TestRoundTrip:
    @given(graph=workflow_graphs())
    @settings(deadline=None, max_examples=60)
    def test_structure_preserved(self, graph):
        reparsed = parse_makeflow(render_makeflow(graph))
        assert len(reparsed) == len(graph)
        assert reparsed.category_counts() == graph.category_counts()
        assert reparsed.depth() == graph.depth()
        assert reparsed.initial_files() == graph.initial_files()
        assert reparsed.final_outputs() == graph.final_outputs()

    @given(graph=workflow_graphs())
    @settings(deadline=None, max_examples=60)
    def test_resources_and_runtimes_preserved(self, graph):
        reparsed = parse_makeflow(render_makeflow(graph))
        # Match tasks by their (unique) output file name.
        original = {t.outputs[0].name: t for t in graph.tasks}
        for t in reparsed.tasks:
            o = original[t.outputs[0].name]
            assert t.category == o.category
            assert t.execute_s == o.execute_s
            assert t.declared.cores == o.declared.cores
            assert t.declared.memory_mb == o.declared.memory_mb

    @given(graph=workflow_graphs())
    @settings(deadline=None, max_examples=60)
    def test_file_sizes_and_cache_flags_preserved(self, graph):
        reparsed = parse_makeflow(render_makeflow(graph))
        spec_by_name = {}
        for t in graph.tasks:
            for f in (*t.inputs, *t.outputs):
                spec_by_name[f.name] = f
        for t in reparsed.tasks:
            for f in (*t.inputs, *t.outputs):
                assert f.size_mb == spec_by_name[f.name].size_mb
                assert f.cacheable == spec_by_name[f.name].cacheable

    @given(graph=workflow_graphs())
    @settings(deadline=None, max_examples=40)
    def test_dependency_relation_preserved(self, graph):
        reparsed = parse_makeflow(render_makeflow(graph))
        def edges(g):
            by_out = {t.outputs[0].name: t for t in g.tasks}
            result = set()
            for t in g.tasks:
                for dep_id in g.dependencies[t.id]:
                    dep = g.task(dep_id)
                    result.add((dep.outputs[0].name, t.outputs[0].name))
            return result

        assert edges(reparsed) == edges(graph)

    def test_render_is_idempotent_modulo_text(self):
        from repro.workloads.blast import blast_multistage

        g = blast_multistage((6, 2, 4))
        text1 = render_makeflow(g)
        text2 = render_makeflow(parse_makeflow(text1))
        assert text1 == text2
