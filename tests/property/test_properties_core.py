"""Property-based tests for resource vectors, the link, and Algorithm 1."""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.cluster.resources import ResourceVector
from repro.hta.estimator import EstimatorConfig, ResourceEstimator, SimulatedTask
from repro.sim.engine import Engine
from repro.wq.link import Link

vectors = st.builds(
    ResourceVector,
    cores=st.floats(min_value=0.0, max_value=64.0, allow_nan=False),
    memory_mb=st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
    disk_mb=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
)

positive_vectors = st.builds(
    ResourceVector,
    cores=st.floats(min_value=0.1, max_value=64.0, allow_nan=False),
    memory_mb=st.floats(min_value=1.0, max_value=1e5, allow_nan=False),
    disk_mb=st.floats(min_value=1.0, max_value=1e6, allow_nan=False),
)


class TestResourceVectorProperties:
    @given(a=vectors, b=vectors)
    def test_addition_commutes(self, a, b):
        assert a + b == b + a

    @given(a=vectors, b=vectors, c=vectors)
    def test_addition_associates(self, a, b, c):
        left = (a + b) + c
        right = a + (b + c)
        for x, y in zip(left, right):
            assert math.isclose(x, y, rel_tol=1e-12, abs_tol=1e-9)

    @given(a=vectors, b=vectors)
    def test_sub_then_add_roundtrips(self, a, b):
        back = (a - b) + b
        for x, y in zip(back, a):
            assert math.isclose(x, y, rel_tol=1e-9, abs_tol=1e-6)

    @given(a=vectors, b=vectors)
    def test_fits_in_transitive_with_max(self, a, b):
        m = a.max_with(b)
        assert a.fits_in(m)
        assert b.fits_in(m)

    @given(a=vectors)
    def test_fits_in_reflexive(self, a):
        assert a.fits_in(a)

    @given(a=positive_vectors, cap=positive_vectors)
    def test_copies_fitting_consistent_with_fits(self, a, cap):
        n = a.copies_fitting_in(cap)
        if 0 < n < 10_000:
            assert a.scale(n).fits_in(cap)
            assert not a.scale(n + 1).fits_in(cap.scale(1 - 1e-9))

    @given(a=vectors)
    def test_clamp_floor_is_nonnegative(self, a):
        assert a.clamp_floor(0.0).is_nonnegative()


class TestLinkProperties:
    @given(
        sizes=st.lists(
            st.floats(min_value=1.0, max_value=1e3, allow_nan=False),
            min_size=1,
            max_size=10,
        ),
        capacity=st.floats(min_value=10.0, max_value=1e3),
    )
    @settings(deadline=None)
    def test_conservation_of_bytes(self, sizes, capacity):
        """Every byte offered is eventually moved, exactly once."""
        engine = Engine()
        link = Link(engine, capacity)
        for i, size in enumerate(sizes):
            link.start_transfer(f"t{i}", size)
        engine.run()
        assert math.isclose(link.bytes_moved_mb, sum(sizes), rel_tol=1e-6)
        assert link.transfers_completed == len(sizes)

    @given(
        sizes=st.lists(
            st.floats(min_value=1.0, max_value=1e3, allow_nan=False),
            min_size=1,
            max_size=10,
        ),
        capacity=st.floats(min_value=10.0, max_value=1e3),
    )
    @settings(deadline=None)
    def test_makespan_at_least_total_over_capacity(self, sizes, capacity):
        """The link can never beat its capacity."""
        engine = Engine()
        link = Link(engine, capacity)
        finish = []
        for i, size in enumerate(sizes):
            link.start_transfer(f"t{i}", size, on_complete=lambda t: finish.append(engine.now))
        engine.run()
        lower_bound = sum(sizes) / capacity
        assert max(finish) >= lower_bound - 1e-6

    @given(
        sizes=st.lists(
            st.floats(min_value=1.0, max_value=100.0, allow_nan=False),
            min_size=2,
            max_size=8,
        )
    )
    @settings(deadline=None)
    def test_equal_sizes_finish_together(self, sizes):
        engine = Engine()
        link = Link(engine, 100.0)
        finish = []
        size = sizes[0]
        for i in range(len(sizes)):
            link.start_transfer(f"t{i}", size, on_complete=lambda t: finish.append(engine.now))
        engine.run()
        assert max(finish) - min(finish) < 1e-6


class TestEstimatorProperties:
    worker = ResourceVector(4, 8192, 8192)

    task_lists = st.lists(
        st.builds(
            SimulatedTask,
            resources=st.builds(
                ResourceVector,
                cores=st.floats(min_value=0.5, max_value=4.0),
                memory_mb=st.floats(min_value=64, max_value=8192),
                disk_mb=st.floats(min_value=64, max_value=8192),
            ),
            remaining_s=st.floats(min_value=1.0, max_value=500.0),
        ),
        max_size=20,
    )

    @given(waiting=task_lists, running=task_lists, active=st.integers(0, 10))
    @settings(deadline=None, max_examples=60)
    def test_plan_delta_respects_quota_and_pool(self, waiting, running, active):
        est = ResourceEstimator(self.worker, EstimatorConfig())
        idle = 0 if running else active
        plan = est.estimate(
            100.0, running, waiting, active, idle, max_workers=active + 5
        )
        assert -active <= plan.delta <= 5
        assert plan.next_action_s > 0

    @given(waiting=task_lists)
    @settings(deadline=None, max_examples=60)
    def test_scale_up_bounded_by_one_worker_per_task(self, waiting):
        est = ResourceEstimator(self.worker, EstimatorConfig())
        plan = est.estimate(100.0, [], waiting, 0, 0)
        assert 0 <= plan.delta <= len(waiting)

    @given(waiting=task_lists, running=task_lists)
    @settings(deadline=None, max_examples=60)
    def test_deterministic(self, waiting, running):
        est = ResourceEstimator(self.worker, EstimatorConfig())
        idle = 0
        p1 = est.estimate(100.0, running, waiting, 3, idle)
        p2 = est.estimate(100.0, running, waiting, 3, idle)
        assert p1 == p2

    @given(waiting=task_lists)
    @settings(deadline=None, max_examples=60)
    def test_more_workers_never_increases_scale_up(self, waiting):
        """Monotonicity: a larger active pool never asks for more."""
        est = ResourceEstimator(self.worker, EstimatorConfig())
        small = est.estimate(100.0, [], waiting, 0, 0)
        large = est.estimate(100.0, [], waiting, 3, 3)
        if small.delta > 0 and large.delta > 0:
            assert large.delta <= small.delta
