"""Property: merged shard journals agree with the foreman's aggregates.

Satellite invariant of the sharded data plane: for any shard count,
partitioner seed, and workload, replaying the *merged* per-shard
journals reconstructs the same task-conservation totals the foreman
reports live — every submitted task is exactly one of
completed / ready / in-flight, at the end and at any mid-run cut.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.resources import ResourceVector
from repro.sim.engine import Engine
from repro.wq.estimator import DeclaredResourceEstimator
from repro.wq.link import Link
from repro.wq.master import Master
from repro.wq.sharding import Foreman, TaskPartitioner, merge_journals
from repro.wq.task import Task
from repro.wq.worker import Worker

FOOT = ResourceVector(1, 512, 128)
CAP = ResourceVector(4, 4096, 4096)


def build_plane(n_shards: int, seed: int, mode: str):
    engine = Engine()
    link = Link(engine, 100.0)
    shards = [
        Master(engine, link, estimator=DeclaredResourceEstimator(), name=f"m{i}")
        for i in range(n_shards)
    ]
    foreman = Foreman(
        engine,
        shards,
        partitioner=TaskPartitioner(n_shards, seed=seed, mode=mode),
    )
    for shard in shards:
        Worker(engine, shard, f"w-{shard.name}", CAP, connect_latency=1.0)
    return engine, foreman, shards


@given(
    n_shards=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**16),
    mode=st.sampled_from(["hash", "range"]),
    runtimes=st.lists(
        st.floats(min_value=1.0, max_value=20.0), min_size=1, max_size=10
    ),
)
@settings(max_examples=30, deadline=None)
def test_merged_journals_replay_to_the_foreman_aggregate(
    n_shards, seed, mode, runtimes
):
    engine, foreman, shards = build_plane(n_shards, seed, mode)
    tasks = [
        Task("c", execute_s=r, footprint=FOOT, declared=FOOT) for r in runtimes
    ]
    foreman.submit_many(tasks)

    # Mid-run cut: conservation must hold at any event boundary.
    engine.run(until=10.0)
    state = foreman.journal.replay()
    assert (
        len(state.completions) + len(state.ready) + len(state.unclaimed)
        == foreman.tasks_submitted
        == len(tasks)
    )
    assert len(state.ready) == len(foreman.queue)
    assert len(state.unclaimed) == len(foreman.running) + len(foreman._unclaimed)
    assert len(state.completions) == len(foreman.done)

    # Run to completion: everything conserved into the completion set.
    engine.run(until=2_000.0)
    assert foreman.all_done
    merged = merge_journals([s.journal for s in shards])
    assert len(merged) == sum(len(s.journal) for s in shards)
    final = merged.replay()
    assert not final.ready and not final.unclaimed
    assert len(final.completions) == foreman.stats().done == len(tasks)
    assert sorted(t.id for t, _ in final.completions) == sorted(
        t.id for t in tasks
    )
    # The live aggregate and the replayed history name the same tasks.
    assert sorted(t.id for t in foreman.done) == sorted(
        t.id for t, _ in final.completions
    )
