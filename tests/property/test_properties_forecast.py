"""Property-based tests for the forecast subsystem."""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.forecast.models import (
    ArLeastSquaresForecaster,
    EwmaForecaster,
    HoltForecaster,
    NaiveForecaster,
    default_forecasters,
)
from repro.forecast.selector import OnlineModelSelector
from repro.forecast.series import DemandSeries

# A non-negative, finite demand history with strictly positive spacings.
histories = st.lists(
    st.tuples(
        st.floats(min_value=0.1, max_value=600.0, allow_nan=False),  # dt
        st.floats(min_value=0.0, max_value=1e4, allow_nan=False),  # y
    ),
    min_size=1,
    max_size=60,
)

horizons = st.floats(min_value=0.0, max_value=3600.0, allow_nan=False)

FACTORIES = (
    NaiveForecaster,
    EwmaForecaster,
    HoltForecaster,
    lambda: ArLeastSquaresForecaster(window=16, order=4),
)


def feed(model, history):
    t = 0.0
    for dt, y in history:
        t += dt
        model.observe(t, y)


class TestForecasterProperties:
    @given(history=histories, horizon=horizons)
    @settings(max_examples=60, deadline=None)
    def test_predictions_finite_and_non_negative(self, history, horizon):
        for make in FACTORIES:
            model = make()
            feed(model, history)
            pred = model.predict(horizon)
            assert math.isfinite(pred)
            assert pred >= 0.0

    @given(history=histories, horizon=horizons)
    @settings(max_examples=40, deadline=None)
    def test_determinism_across_instances(self, history, horizon):
        for make in FACTORIES:
            a, b = make(), make()
            feed(a, history)
            feed(b, history)
            assert a.predict(horizon) == b.predict(horizon)
            assert a.rolling_mae() == b.rolling_mae()

    @given(
        value=st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
        n=st.integers(min_value=3, max_value=30),
    )
    @settings(max_examples=40, deadline=None)
    def test_constant_series_scores_zero_error(self, value, n):
        for make in FACTORIES:
            model = make()
            feed(model, [(10.0, value)] * n)
            # Zero up to float blending noise (EWMA's level recurrence).
            assert model.rolling_mae() <= 1e-9 * max(1.0, value)

    @given(history=histories)
    @settings(max_examples=40, deadline=None)
    def test_error_never_negative_and_scored_monotone(self, history):
        model = HoltForecaster()
        scored_before = model.errors.scored
        feed(model, history)
        assert model.errors.scored >= scored_before
        mae = model.rolling_mae()
        assert mae >= 0.0 or mae == math.inf


class TestSelectorProperties:
    @given(history=histories, horizon=horizons)
    @settings(max_examples=40, deadline=None)
    def test_best_is_always_a_registered_model(self, history, horizon):
        selector = OnlineModelSelector(
            [f for f in default_forecasters()]
        )
        t = 0.0
        for dt, y in history:
            t += dt
            selector.observe(t, y)
        best = selector.best()
        assert best in selector.forecasters
        # And routing returns that model's own prediction.
        assert selector.predict(horizon) == best.predict(horizon)

    @given(history=histories)
    @settings(max_examples=40, deadline=None)
    def test_best_has_minimal_rolling_error(self, history):
        selector = OnlineModelSelector()
        t = 0.0
        for dt, y in history:
            t += dt
            selector.observe(t, y)
        best_err = selector._error_of(selector.best())
        assert all(best_err <= err for err in selector.errors().values())


class TestSeriesProperties:
    @given(history=histories)
    @settings(max_examples=60, deadline=None)
    def test_integral_additivity(self, history):
        series = DemandSeries()
        t = 0.0
        for dt, y in history:
            t += dt
            series.observe(t, y)
        t0, t1 = 0.0, t + 100.0
        mid = (t0 + t1) / 2.0
        whole = series.integrate(t0, t1)
        split = series.integrate(t0, mid) + series.integrate(mid, t1)
        assert math.isclose(whole, split, rel_tol=1e-9, abs_tol=1e-6)

    @given(history=histories, cap=st.integers(min_value=1, max_value=16))
    @settings(max_examples=60, deadline=None)
    def test_bound_always_respected(self, history, cap):
        series = DemandSeries(max_samples=cap)
        t = 0.0
        for dt, y in history:
            t += dt
            series.observe(t, y)
        assert len(series) <= cap
        assert series.dropped == max(0, len(history) - cap)
