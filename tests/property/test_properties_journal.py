"""Property-based tests: journal replay reconstructs the master exactly.

Drive a live master through a random workload prefix — random task mix,
random run lengths, random worker kills — crash it at an arbitrary
moment, replay the journal, and require the reconstructed state (ready
queue, unclaimed in-flight set, completions, retry counters, category
statistics) to equal the pre-crash snapshot. Worker kills (immediate
front-of-queue requeue) rather than fault backoffs keep every lost task
journalled at a deterministic position, so equality is exact.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.cluster.resources import ResourceVector
from repro.sim.engine import Engine
from repro.wq.estimator import DeclaredResourceEstimator
from repro.wq.link import Link
from repro.wq.master import Master
from repro.wq.task import Task
from repro.wq.worker import Worker, WorkerState

FOOT = ResourceVector(1, 512, 128)
CATEGORIES = ("a", "b")


def build_master(engine):
    return Master(engine, Link(engine, 200.0), estimator=DeclaredResourceEstimator())


class TestJournalReplayProperties:
    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_replay_equals_precrash_state(self, data):
        engine = Engine()
        master = build_master(engine)
        workers = [
            Worker(engine, master, f"w{i}", ResourceVector(2, 4096, 4096))
            for i in range(3)
        ]
        n_tasks = data.draw(st.integers(2, 10), label="n_tasks")
        tasks = [
            Task(
                data.draw(st.sampled_from(CATEGORIES), label=f"cat{i}"),
                execute_s=float(data.draw(st.integers(5, 40), label=f"exec{i}")),
                footprint=FOOT,
                declared=FOOT,
            )
            for i in range(n_tasks)
        ]
        master.submit_many(tasks)
        for step in range(data.draw(st.integers(1, 6), label="steps")):
            dt = data.draw(st.integers(1, 25), label=f"dt{step}")
            engine.run(until=engine.now + dt)
            if data.draw(st.booleans(), label=f"kill{step}"):
                alive = [w for w in workers if w.state is WorkerState.READY]
                if alive:
                    victim = data.draw(
                        st.integers(0, len(alive) - 1), label=f"victim{step}"
                    )
                    alive[victim].kill()

        pre = {
            "queue": [t.id for t in master.queue],
            "in_flight": set(master.running),
            "done": [t.id for t in master.done],
            "abandoned": [t.id for t in master.abandoned],
            "attempts": {t.id: t.attempts for t in tasks},
            "submitted": master.tasks_submitted,
            "results": list(master.monitor.results),
            "stats": {c: master.monitor.category(c) for c in CATEGORIES},
            "delivered": set(master._delivered),
        }

        master.crash()
        master.recover(replay=True)

        assert [t.id for t in master.queue] == pre["queue"]
        assert set(master._unclaimed) == pre["in_flight"]
        assert [t.id for t in master.done] == pre["done"]
        assert [t.id for t in master.abandoned] == pre["abandoned"]
        assert {t.id: t.attempts for t in tasks} == pre["attempts"]
        assert master.tasks_submitted == pre["submitted"]
        assert master._delivered == pre["delivered"]
        # The monitor was rebuilt from replayed completions: identical
        # results in identical order, identical per-category aggregates.
        assert list(master.monitor.results) == pre["results"]
        for category in CATEGORIES:
            assert master.monitor.category(category) == pre["stats"][category]
        # Completed work is never forgotten and never re-queued.
        assert not set(pre["done"]) & {t.id for t in master.queue}
        assert master.tasks_rerun == 0

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_replay_is_idempotent(self, data):
        """Replaying the same journal twice yields identical states —
        recovery after a crash-during-recovery is safe."""
        engine = Engine()
        master = build_master(engine)
        Worker(engine, master, "w0", ResourceVector(2, 4096, 4096))
        for i in range(data.draw(st.integers(1, 6), label="n_tasks")):
            master.submit(
                Task(
                    CATEGORIES[i % 2],
                    execute_s=float(data.draw(st.integers(5, 30), label=f"e{i}")),
                    footprint=FOOT,
                    declared=FOOT,
                )
            )
        engine.run(until=engine.now + data.draw(st.integers(1, 60), label="t"))
        first = master.journal.replay()
        second = master.journal.replay()
        assert [t.id for t in first.ready] == [t.id for t in second.ready]
        assert first.unclaimed.keys() == second.unclaimed.keys()
        assert [r.task_id for _t, r in first.completions] == [
            r.task_id for _t, r in second.completions
        ]
        assert first.attempts == second.attempts
        assert first.delivered == second.delivered
        assert first.submitted == second.submitted
